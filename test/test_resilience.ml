(* The resilient campaign runtime: deterministic fault injection,
   supervised trials (watchdog / retry / quarantine), shard-failure
   containment and checkpoint/resume.

   The flagship property at the bottom: interrupting a fault-injected
   campaign after ANY prefix of its tests and resuming from the journal
   yields method statistics — and a JSON summary — byte-identical to the
   uninterrupted run's. *)

module Fault = Sched.Fault
module Supervise = Harness.Supervise
module Pipeline = Harness.Pipeline
module Checkpoint = Harness.Checkpoint

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* ---------------- fault spec parsing ---------------- *)

let spec_exn s =
  match Fault.of_string s with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "spec %S rejected: %s" s msg

let test_spec_parse () =
  let s = spec_exn "timeout:0.05,crash:0.02" in
  checkb "timeout rate" true (s.Fault.timeout_rate = 0.05);
  checkb "crash rate" true (s.Fault.crash_rate = 0.02);
  checkb "truncate defaults to 0" true (s.Fault.truncate_rate = 0.);
  let t = spec_exn " truncate:0.5 " in
  checkb "whitespace tolerated" true (t.Fault.truncate_rate = 0.5);
  checkb "none is none" true (Fault.is_none Fault.none);
  checkb "nonzero spec is not none" false (Fault.is_none s)

let test_spec_roundtrip () =
  let specs =
    [ "timeout:0.05,crash:0.02"; "crash:1"; "timeout:0.1,crash:0.2,truncate:0.3" ]
  in
  List.iter
    (fun str ->
      let s = spec_exn str in
      checkb ("round-trips: " ^ str) true (spec_exn (Fault.to_string s) = s))
    specs

let test_spec_errors () =
  let rejects s =
    match Fault.of_string s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "spec %S must be rejected" s
  in
  rejects "";
  rejects "bogus:0.1";
  rejects "timeout";
  rejects "timeout:zero";
  rejects "timeout:1.5";
  rejects "timeout:-0.1";
  rejects "timeout:0.9,crash:0.9"

(* ---------------- fault draws ---------------- *)

let test_draw_deterministic () =
  let plan = Fault.plan ~seed:42 (spec_exn "timeout:0.3,crash:0.3,truncate:0.3") in
  for test = 1 to 10 do
    for trial = 0 to 5 do
      for attempt = 0 to 2 do
        checkb "same draw twice" true
          (Fault.draw plan ~test ~trial ~attempt
          = Fault.draw plan ~test ~trial ~attempt)
      done
    done
  done;
  (* the empty plan never fires *)
  for test = 1 to 50 do
    checkb "disabled plan silent" true
      (Fault.draw Fault.disabled ~test ~trial:0 ~attempt:0 = Fault.No_fault)
  done

let test_draw_extremes () =
  let always = Fault.plan ~seed:3 (spec_exn "crash:1") in
  for test = 1 to 30 do
    match Fault.draw always ~test ~trial:test ~attempt:0 with
    | Fault.Crash at -> checkb "crash step sane" true (at >= 50)
    | _ -> Alcotest.fail "rate-1.0 crash plan must always crash"
  done;
  let never = Fault.plan ~seed:3 Fault.none in
  for test = 1 to 30 do
    checkb "rate-0 never fires" true
      (Fault.draw never ~test ~trial:0 ~attempt:0 = Fault.No_fault)
  done;
  (* seeds decorrelate the schedule *)
  let a = Fault.plan ~seed:1 (spec_exn "crash:0.5")
  and b = Fault.plan ~seed:2 (spec_exn "crash:0.5") in
  let draws p = List.init 64 (fun i -> Fault.draw p ~test:i ~trial:0 ~attempt:0) in
  checkb "different seeds differ" false (draws a = draws b)

(* ---------------- supervised execution ---------------- *)

let test_supervise_ok () =
  let sv = Supervise.run ~seed:1 (fun ~attempt:_ -> 41 + 1) in
  checkb "result" true (sv.Supervise.sv_result = Some 42);
  checkb "outcome" true (sv.Supervise.sv_outcome = Supervise.Ok);
  checki "no retries" 0 sv.Supervise.sv_retries;
  checki "no backoff" 0 sv.Supervise.sv_backoff

let test_supervise_retry_then_succeed () =
  let sv =
    Supervise.run ~seed:1 (fun ~attempt ->
        if attempt = 0 then raise (Fault.Injected_crash "flaky vm") else "done")
  in
  checkb "recovered" true (sv.Supervise.sv_result = Some "done");
  checkb "outcome ok" true (Supervise.is_ok sv.Supervise.sv_outcome);
  checki "one retry" 1 sv.Supervise.sv_retries;
  checkb "backoff charged" true (sv.Supervise.sv_backoff > 0)

let test_supervise_quarantine () =
  let attempts = ref 0 in
  let sv =
    Supervise.run ~seed:1 (fun ~attempt:_ ->
        incr attempts;
        raise (Fault.Trace_truncated "always"))
  in
  checkb "no result" true (sv.Supervise.sv_result = None);
  (match sv.Supervise.sv_outcome with
  | Supervise.Quarantined _ -> ()
  | o -> Alcotest.failf "expected quarantine, got %s" (Supervise.outcome_name o));
  checki "default max_retries exhausted" Supervise.default.Supervise.max_retries
    sv.Supervise.sv_retries;
  checki "attempts = retries + 1" (Supervise.default.Supervise.max_retries + 1)
    !attempts

let test_supervise_crash_no_retry () =
  let attempts = ref 0 in
  let sv =
    Supervise.run ~seed:1 (fun ~attempt:_ ->
        incr attempts;
        failwith "harness bug")
  in
  (match sv.Supervise.sv_outcome with
  | Supervise.Crashed msg -> checkb "message kept" true (String.length msg > 0)
  | o -> Alcotest.failf "expected crashed, got %s" (Supervise.outcome_name o));
  checki "non-transient never retried" 1 !attempts

let test_supervise_timeout_no_retry () =
  let attempts = ref 0 in
  let sv =
    Supervise.run ~seed:1 (fun ~attempt:_ ->
        incr attempts;
        raise (Fault.Watchdog_timeout 123))
  in
  checkb "timed out at step" true (sv.Supervise.sv_outcome = Supervise.Timed_out 123);
  checki "deterministic timeout never retried" 1 !attempts

let test_backoff_deterministic_bounded () =
  let p = { Supervise.default with Supervise.backoff_base = 64 } in
  for attempt = 1 to 12 do
    let b = Supervise.backoff p ~seed:9 ~attempt in
    checkb "positive" true (b > 0);
    checkb "bounded" true (b <= 64 * 4096);
    checki "pure in (seed, attempt)" b (Supervise.backoff p ~seed:9 ~attempt)
  done;
  checkb "grows with attempt (early)" true
    (Supervise.backoff p ~seed:9 ~attempt:1 < Supervise.backoff p ~seed:9 ~attempt:4)

let test_outcome_names () =
  checks "ok" "ok" (Supervise.outcome_name Supervise.Ok);
  checks "timeout" "timeout" (Supervise.outcome_name (Supervise.Timed_out 5));
  checks "crashed" "crashed" (Supervise.outcome_name (Supervise.Crashed "x"));
  checks "quarantined" "quarantined"
    (Supervise.outcome_name (Supervise.Quarantined "x"))

(* ---------------- executor-level injection ---------------- *)

let env = lazy (Sched.Exec.make_env Kernel.Config.all_buggy)

let scenario13 =
  lazy
    (match Harness.Scenarios.find 13 with
    | Some s -> s
    | None -> Alcotest.fail "scenario 13 missing")

let run_with ?watchdog ?fault () =
  let e = Lazy.force env and s = Lazy.force scenario13 in
  let rng = Random.State.make [| 5 |] in
  Sched.Exec.run_conc e ~writer:s.Harness.Scenarios.writer
    ~reader:s.Harness.Scenarios.reader
    ~policy:(Sched.Policies.naive rng ~period:4)
    ?watchdog ?fault ()

let test_injected_crash_raises () =
  (match run_with ~fault:(Fault.Crash 60) () with
  | exception Fault.Injected_crash _ -> ()
  | _ -> Alcotest.fail "Crash verdict must raise Injected_crash");
  match run_with ~fault:(Fault.Truncate 60) () with
  | exception Fault.Trace_truncated _ -> ()
  | _ -> Alcotest.fail "Truncate verdict must raise Trace_truncated"

let test_watchdog_raises () =
  match run_with ~watchdog:40 () with
  | exception Fault.Watchdog_timeout n ->
      checkb "fired at the budget" true (n >= 40)
  | _ -> Alcotest.fail "watchdog must abort a long trial"

let test_injected_timeout_becomes_watchdog () =
  match run_with ~fault:Fault.Timeout () with
  | exception Fault.Watchdog_timeout n ->
      checkb "clamped horizon" true (n >= Sched.Exec.injected_timeout_horizon)
  | _ -> Alcotest.fail "Timeout verdict must trip the watchdog"

let test_no_fault_unchanged () =
  (* the supervision plumbing must not perturb a healthy trial *)
  let plain = run_with () and again = run_with ~fault:Fault.No_fault () in
  checkb "same steps" true (plain.Sched.Exec.cc_steps = again.Sched.Exec.cc_steps);
  checkb "same accesses" true
    (plain.Sched.Exec.cc_accesses = again.Sched.Exec.cc_accesses)

(* ---------------- lookup errors (satellite b) ---------------- *)

let expect_invalid_arg name f =
  match f () with
  | exception Invalid_argument msg ->
      checkb (name ^ " names the id") true (contains ~sub:"4242" msg)
  | _ -> Alcotest.failf "%s must raise Invalid_argument" name

let test_unknown_corpus_id () =
  expect_invalid_arg "Parallel.prog_of_table" (fun () ->
      Harness.Parallel.prog_of_table (Hashtbl.create 4) 4242)

(* ---------------- shard failure containment ---------------- *)

let test_shard_failure_shape () =
  let ct w r = { Core.Select.writer = w; reader = r; hint = None } in
  let rs =
    Harness.Parallel.shard_failure
      [ (3, ct 1 2); (7, ct 2 1) ]
      (Failure "domain blew up")
  in
  checki "one record per test" 2 (List.length rs);
  List.iter2
    (fun idx (r : Pipeline.test_result) ->
      checki "index preserved" idx r.Pipeline.tr_index;
      (match r.Pipeline.tr_outcome with
      | Supervise.Crashed msg ->
          checkb "names the worker death" true
            (contains ~sub:"domain blew up" msg)
      | o -> Alcotest.failf "expected crashed, got %s" (Supervise.outcome_name o));
      checki "no salvaged trials" 0 r.Pipeline.tr_trials;
      checkb "no bug" true (r.Pipeline.tr_bug = None))
    [ 3; 7 ] rs

(* ---------------- checkpoint journal ---------------- *)

let sample_result ~index ~outcome ~bug =
  {
    Pipeline.tr_index = index;
    tr_hinted = index mod 2 = 0;
    tr_outcome = outcome;
    tr_retries = index mod 3;
    tr_exercised = true;
    tr_pmc_observed = true;
    tr_issues = [ 13; 16 ];
    tr_unknown = 1;
    tr_trials = 4;
    tr_steps = 5000 + index;
    tr_hint_hits = index mod 4;
    tr_miss_no_write = 1;
    tr_miss_no_read = index mod 2;
    tr_miss_value = 0;
    tr_prof = [ ("poll_wait", 120 + index, 7); ("tty_write", 64, 3) ];
    tr_bug = bug;
  }

let sample_bug () =
  let s = Lazy.force scenario13 in
  {
    Pipeline.br_issues = [ 13 ];
    br_test = 2;
    br_trial = 1;
    br_writer = s.Harness.Scenarios.writer;
    br_reader = s.Harness.Scenarios.reader;
    br_replay = "0:0101";
  }

let test_checkpoint_roundtrip () =
  let path = Filename.temp_file "snowboard_ck" ".json" in
  let entries =
    [
      {
        Checkpoint.ck_method = "S-INS";
        ck_result = sample_result ~index:1 ~outcome:Supervise.Ok ~bug:(Some (sample_bug ()));
      };
      {
        Checkpoint.ck_method = "S-INS";
        ck_result =
          sample_result ~index:2 ~outcome:(Supervise.Timed_out 192) ~bug:None;
      };
      {
        Checkpoint.ck_method = "S-MEM";
        ck_result =
          sample_result ~index:1 ~outcome:(Supervise.Quarantined "vm crash: x")
            ~bug:None;
      };
      {
        Checkpoint.ck_method = "S-MEM";
        ck_result =
          sample_result ~index:3 ~outcome:(Supervise.Crashed "boom") ~bug:None;
      };
    ]
  in
  let file = { Checkpoint.ck_fingerprint = "fp-1"; ck_entries = entries } in
  Checkpoint.save path file;
  (match Checkpoint.load path with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok loaded ->
      checks "fingerprint" "fp-1" loaded.Checkpoint.ck_fingerprint;
      checkb "entries round-trip" true (loaded.Checkpoint.ck_entries = entries));
  Sys.remove path

let test_checkpoint_lookup () =
  let entries =
    [
      {
        Checkpoint.ck_method = "S-INS";
        ck_result = sample_result ~index:2 ~outcome:Supervise.Ok ~bug:None;
      };
    ]
  in
  checkb "hit" true (Checkpoint.lookup entries ~method_:"S-INS" 2 <> None);
  checkb "wrong method" true (Checkpoint.lookup entries ~method_:"S-MEM" 2 = None);
  checkb "wrong index" true (Checkpoint.lookup entries ~method_:"S-INS" 3 = None)

let test_checkpoint_load_errors () =
  (match Checkpoint.load "/nonexistent/snowboard.ck" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must be an error");
  let path = Filename.temp_file "snowboard_ck" ".json" in
  let oc = open_out path in
  output_string oc "{\"schema\": \"other/v9\", \"fingerprint\": \"x\", \"entries\": []}";
  close_out oc;
  (match Checkpoint.load path with
  | Error msg -> checkb "names the schema" true (contains ~sub:"schema" msg)
  | Ok _ -> Alcotest.fail "foreign schema must be an error");
  Sys.remove path

let test_checkpoint_sink () =
  let path = Filename.temp_file "snowboard_ck" ".json" in
  let sink = Checkpoint.create_sink ~path ~fingerprint:"fp-2" ~initial:[] in
  Checkpoint.record sink ~method_:"S-INS"
    (sample_result ~index:1 ~outcome:Supervise.Ok ~bug:None);
  Checkpoint.record sink ~method_:"S-INS"
    (sample_result ~index:2 ~outcome:(Supervise.Timed_out 10) ~bug:None);
  (match Checkpoint.load path with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok f ->
      checki "both journaled" 2 (List.length f.Checkpoint.ck_entries);
      checkb "order preserved" true
        (List.map
           (fun e -> e.Checkpoint.ck_result.Pipeline.tr_index)
           f.Checkpoint.ck_entries
        = [ 1; 2 ]));
  Sys.remove path

let test_fingerprint_sensitivity () =
  let cfg = Pipeline.default in
  let fp ?(cfg = cfg) ?(budget = 10) ?(extra = "") () =
    Checkpoint.fingerprint ~cfg ~budget ~methods:[ "S-INS" ] ~extra ()
  in
  checks "stable" (fp ()) (fp ());
  checkb "seed changes it" false
    (fp () = fp ~cfg:{ cfg with Pipeline.seed = 99 } ());
  checkb "budget changes it" false (fp () = fp ~budget:11 ());
  checkb "fault knobs change it" false (fp () = fp ~extra:"faults=crash:1" ())

(* ---------------- campaign-level supervision ---------------- *)

let small_cfg =
  {
    Pipeline.default with
    Pipeline.seed = 7;
    fuzz_iters = 120;
    trials_per_test = 4;
    seed_corpus = Pipeline.scenario_seeds ();
  }

let pipe = lazy (Pipeline.prepare small_cfg)

let m_sins = Core.Select.Strategy Core.Cluster.S_INS

let test_crash_rate_one_quarantines_all () =
  let t = Lazy.force pipe in
  let faults = Fault.plan ~seed:7 (spec_exn "crash:1") in
  let s = Pipeline.run_method ~faults t m_sins ~budget:6 in
  checki "all quarantined" s.Pipeline.executed s.Pipeline.outcomes.Pipeline.oc_quarantined;
  checki "every retry burned"
    (s.Pipeline.executed * Supervise.default.Supervise.max_retries)
    s.Pipeline.outcomes.Pipeline.oc_retries;
  checkb "degraded" true (Pipeline.degraded [ s ]);
  checkb "no salvaged data" true
    (s.Pipeline.total_trials = 0 && s.Pipeline.bugs = [] && s.Pipeline.issues = [])

let test_timeout_rate_one_times_out_all () =
  let t = Lazy.force pipe in
  let faults = Fault.plan ~seed:7 (spec_exn "timeout:1") in
  let s = Pipeline.run_method ~faults t m_sins ~budget:6 in
  checki "all timed out" s.Pipeline.executed s.Pipeline.outcomes.Pipeline.oc_timed_out;
  checki "timeouts never retried" 0 s.Pipeline.outcomes.Pipeline.oc_retries

let test_watchdog_budget_times_out_all () =
  let t = Lazy.force pipe in
  let sup = { Supervise.default with Supervise.step_budget = Some 40 } in
  let s = Pipeline.run_method ~sup t m_sins ~budget:6 in
  checki "tiny budget times out every test" s.Pipeline.executed
    s.Pipeline.outcomes.Pipeline.oc_timed_out

let test_no_faults_no_outcome_change () =
  (* supervision with default policy must not change a healthy campaign *)
  let t = Lazy.force pipe in
  let s = Pipeline.run_method t m_sins ~budget:6 in
  checki "all ok" s.Pipeline.executed s.Pipeline.outcomes.Pipeline.oc_ok;
  checki "no retries" 0 s.Pipeline.outcomes.Pipeline.oc_retries;
  checkb "not degraded" false (Pipeline.degraded [ s ])

(* ---------------- interrupt/resume equivalence (satellite c) ---------- *)

let summary_string stats =
  Obs.Export.to_string
    (Harness.Report.json_summary ~stats
       ~found:[ ("campaign", Pipeline.issues_union stats) ]
       ())

let test_resume_any_prefix_identical () =
  let t = Lazy.force pipe in
  let faults = Fault.plan ~seed:7 (spec_exn "timeout:0.2,crash:0.15") in
  let collected = ref [] in
  let full =
    Pipeline.run_method ~faults ~on_result:(fun r -> collected := r :: !collected)
      t m_sins ~budget:8
  in
  let results = List.rev !collected in
  checki "every test journaled" full.Pipeline.executed (List.length results);
  checkb "fault plan actually bit (test is meaningful)" true
    (Pipeline.degraded [ full ]);
  let reference = summary_string [ full ] in
  List.iteri
    (fun k _ ->
      (* resume with the first [k] results journaled, re-run the rest *)
      let journal = List.filteri (fun i _ -> i < k) results in
      let resume idx =
        List.find_opt (fun r -> r.Pipeline.tr_index = idx) journal
      in
      let resumed = Pipeline.run_method ~faults ~resume t m_sins ~budget:8 in
      checkb
        (Printf.sprintf "stats equal after interrupt at %d" k)
        true (resumed = full);
      checks
        (Printf.sprintf "summary byte-identical after interrupt at %d" k)
        reference
        (summary_string [ resumed ]))
    (() :: List.map ignore results)

let prop_resume_random_subset =
  (* stronger than prefixes: ANY journaled subset must merge back to the
     uninterrupted statistics *)
  QCheck.Test.make ~name:"resume from any journaled subset" ~count:12
    QCheck.(list_of_size (Gen.return 8) bool)
    (fun mask ->
      let t = Lazy.force pipe in
      let faults = Fault.plan ~seed:7 (spec_exn "timeout:0.2,crash:0.15") in
      let collected = ref [] in
      let full =
        Pipeline.run_method ~faults
          ~on_result:(fun r -> collected := r :: !collected)
          t m_sins ~budget:8
      in
      let results = List.rev !collected in
      let journal =
        List.filteri
          (fun i _ -> match List.nth_opt mask i with Some b -> b | None -> false)
          results
      in
      let resume idx =
        List.find_opt (fun r -> r.Pipeline.tr_index = idx) journal
      in
      Pipeline.run_method ~faults ~resume t m_sins ~budget:8 = full)

(* ---------------- driver ---------------- *)

let tests =
  [
    Alcotest.test_case "fault spec parses" `Quick test_spec_parse;
    Alcotest.test_case "fault spec round-trips" `Quick test_spec_roundtrip;
    Alcotest.test_case "fault spec rejects junk" `Quick test_spec_errors;
    Alcotest.test_case "draws deterministic" `Quick test_draw_deterministic;
    Alcotest.test_case "draw extremes" `Quick test_draw_extremes;
    Alcotest.test_case "supervise: ok" `Quick test_supervise_ok;
    Alcotest.test_case "supervise: retry then succeed" `Quick
      test_supervise_retry_then_succeed;
    Alcotest.test_case "supervise: quarantine after retries" `Quick
      test_supervise_quarantine;
    Alcotest.test_case "supervise: crash not retried" `Quick
      test_supervise_crash_no_retry;
    Alcotest.test_case "supervise: timeout not retried" `Quick
      test_supervise_timeout_no_retry;
    Alcotest.test_case "backoff deterministic and bounded" `Quick
      test_backoff_deterministic_bounded;
    Alcotest.test_case "outcome names stable" `Quick test_outcome_names;
    Alcotest.test_case "injected crash/truncate raise" `Quick
      test_injected_crash_raises;
    Alcotest.test_case "watchdog aborts long trials" `Quick test_watchdog_raises;
    Alcotest.test_case "injected timeout trips watchdog" `Quick
      test_injected_timeout_becomes_watchdog;
    Alcotest.test_case "No_fault leaves trials untouched" `Quick
      test_no_fault_unchanged;
    Alcotest.test_case "unknown corpus id named" `Quick test_unknown_corpus_id;
    Alcotest.test_case "shard failure contained" `Quick test_shard_failure_shape;
    Alcotest.test_case "checkpoint round-trips" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint lookup keyed" `Quick test_checkpoint_lookup;
    Alcotest.test_case "checkpoint load errors" `Quick test_checkpoint_load_errors;
    Alcotest.test_case "checkpoint sink journals" `Quick test_checkpoint_sink;
    Alcotest.test_case "fingerprint sensitivity" `Quick
      test_fingerprint_sensitivity;
    Alcotest.test_case "crash rate 1.0 quarantines all" `Slow
      test_crash_rate_one_quarantines_all;
    Alcotest.test_case "timeout rate 1.0 times out all" `Slow
      test_timeout_rate_one_times_out_all;
    Alcotest.test_case "watchdog budget times out all" `Slow
      test_watchdog_budget_times_out_all;
    Alcotest.test_case "supervision neutral when healthy" `Slow
      test_no_faults_no_outcome_change;
    Alcotest.test_case "resume any prefix is identical" `Slow
      test_resume_any_prefix_identical;
    QCheck_alcotest.to_alcotest prop_resume_random_subset;
  ]

let () = Alcotest.run "resilience" [ ("resilience", tests) ]
