(* Tests for the zero-allocation execution core: the sink/block
   interpreter paths against the legacy [Vm.step] oracle, the shared-only
   profiling runner and fast profile builder against the legacy pair,
   the edge cache, and the fingerprint/edge-key regressions. *)

module Vm = Vmm.Vm
module Asm = Vmm.Asm
module Isa = Vmm.Isa
module Trace = Vmm.Trace
module P = Fuzzer.Prog
module Exec = Sched.Exec
module Policies = Sched.Policies
module Replay = Sched.Replay

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let env = lazy (Exec.make_env Kernel.Config.v5_12_rc3)

(* ---------------- sink/block paths vs the Vm.step oracle ------------ *)

(* Every sequential path must produce the identical result record AND
   leave the VM in the identical state (fingerprint covers all
   guest-visible state).  Random programs reach faults, console output,
   locks and budget aborts. *)
let prop_sink_block_equivalent =
  QCheck.Test.make
    ~name:"sink, block and threaded paths match the Vm.step oracle" ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let env = Lazy.force env in
      let prog = Fuzzer.Gen.generate (Random.State.make [| seed |]) in
      let r_step = Exec.run_seq_step env ~tid:0 prog in
      let fp_step = Vm.fingerprint env.Exec.vm in
      let r_sink = Exec.run_seq_sink env ~tid:0 prog in
      let fp_sink = Vm.fingerprint env.Exec.vm in
      let r_block = Exec.run_seq env ~tid:0 prog in
      let fp_block = Vm.fingerprint env.Exec.vm in
      let r_threaded = Exec.run_seq_threaded env ~tid:0 prog in
      let fp_threaded = Vm.fingerprint env.Exec.vm in
      r_step = r_sink && r_step = r_block && r_step = r_threaded
      && fp_step = fp_sink && fp_step = fp_block && fp_step = fp_threaded)

(* The shared-only runner must equal the oracle with its access list
   filtered (and no edges); the fast profile builder must equal the
   oracle builder on the result. *)
let prop_shared_profile_equivalent =
  QCheck.Test.make
    ~name:"shared runner + fast profile builder match the legacy pair"
    ~count:60
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let env = Lazy.force env in
      let prog = Fuzzer.Gen.generate (Random.State.make [| seed |]) in
      let r_step = Exec.run_seq_step env ~tid:0 prog in
      let r_shared = Exec.run_seq_shared env ~tid:0 prog in
      let p_oracle = Core.Profile.of_accesses ~test_id:7 r_step.Exec.sq_accesses in
      let p_fast = Core.Profile.of_shared ~test_id:7 r_shared.Exec.sq_accesses in
      r_shared.Exec.sq_accesses
      = List.filter Trace.is_shared r_step.Exec.sq_accesses
      && r_shared.Exec.sq_edges = []
      && r_shared.Exec.sq_console = r_step.Exec.sq_console
      && r_shared.Exec.sq_panicked = r_step.Exec.sq_panicked
      && r_shared.Exec.sq_retvals = r_step.Exec.sq_retvals
      && r_shared.Exec.sq_steps = r_step.Exec.sq_steps
      && p_oracle = p_fast)

(* Lockstep: stepping one VM with [Vm.step] and its twin with
   [Vm.step_sink], the sunk events must materialise to the legacy event
   list instruction by instruction, not just in aggregate. *)
let lockstep_syscalls =
  [
    (Kernel.Abi.sys_socket, [ Kernel.Abi.af_inet; 0 ]);
    (Kernel.Abi.sys_msgget, [ 1 ]);
    (Kernel.Abi.sys_msgget, [ 2 ]);
    (Kernel.Abi.sys_open, [ 1; 0 ]);
    (Kernel.Abi.sys_pipe, [] );
  ]

let test_lockstep_events () =
  let e1 = Exec.make_env Kernel.Config.v5_12_rc3 in
  let e2 = Exec.make_env Kernel.Config.v5_12_rc3 in
  let sink = Vm.make_sink () in
  List.iter
    (fun (nr, args) ->
      Vm.restore e1.Exec.vm e1.Exec.snap;
      Vm.restore e2.Exec.vm e2.Exec.snap;
      let start env =
        Vm.start_call env.Exec.vm 0 env.Exec.kern.Kernel.syscall_entry args;
        Vm.set_reg env.Exec.vm 0 Isa.r12 nr
      in
      start e1;
      start e2;
      let budget = ref 100_000 in
      while Vm.cpu_mode e1.Exec.vm 0 = Vm.Kernel && !budget > 0 do
        decr budget;
        let evs = Vm.step e1.Exec.vm 0 in
        ignore (Vm.step_sink e2.Exec.vm ~tid:0 sink);
        checkb
          (Printf.sprintf "events match at step (syscall %d)" nr)
          true
          (Vm.sink_events sink ~thread:0 = evs)
      done;
      checkb "twin VMs end in the same state" true
        (Vm.fingerprint e1.Exec.vm = Vm.fingerprint e2.Exec.vm))
    lockstep_syscalls

(* [run_block] respects the quantum exactly: quantum 1 is per-instruction
   stepping, and a block never retires more than the quantum. *)
let test_block_quantum () =
  let env = Lazy.force env in
  Vm.restore env.Exec.vm env.Exec.snap;
  Vm.start_call env.Exec.vm 0 env.Exec.kern.Kernel.syscall_entry [ 1; 0 ];
  Vm.set_reg env.Exec.vm 0 Isa.r12 Kernel.Abi.sys_open;
  let sink = Vm.make_sink () in
  let steps = ref 0 in
  while Vm.cpu_mode env.Exec.vm 0 = Vm.Kernel && !steps < 100_000 do
    ignore (Vm.run_block env.Exec.vm ~tid:0 ~quantum:1 sink);
    checki "quantum 1 retires exactly one instruction" 1 sink.Vm.sk_steps;
    incr steps
  done;
  Vm.restore env.Exec.vm env.Exec.snap;
  Vm.start_call env.Exec.vm 0 env.Exec.kern.Kernel.syscall_entry [ 1; 0 ];
  Vm.set_reg env.Exec.vm 0 Isa.r12 Kernel.Abi.sys_open;
  let total = ref 0 in
  while Vm.cpu_mode env.Exec.vm 0 = Vm.Kernel && !total < 100_000 do
    ignore (Vm.run_block env.Exec.vm ~tid:0 ~quantum:7 sink);
    checkb "quantum bounds the block" true (sink.Vm.sk_steps <= 7);
    total := !total + sink.Vm.sk_steps
  done;
  checki "same instruction count either way" !steps !total

(* ---------------- fingerprint separator regressions ----------------- *)

let tiny_vm () =
  let a = Asm.create () in
  Asm.func a "f" (fun () -> Asm.emit a Isa.Ret);
  Vm.create (Asm.link a)

let test_fingerprint_regs_unambiguous () =
  (* r0=1,r1=23 vs r0=12,r1=3: same digit stream, different states *)
  let v1 = tiny_vm () and v2 = tiny_vm () in
  checkb "identical fresh VMs" true (Vm.fingerprint v1 = Vm.fingerprint v2);
  Vm.set_reg v1 0 Isa.r0 1;
  Vm.set_reg v1 0 Isa.r1 23;
  Vm.set_reg v2 0 Isa.r0 12;
  Vm.set_reg v2 0 Isa.r1 3;
  checkb "register boundaries are delimited" false
    (Vm.fingerprint v1 = Vm.fingerprint v2)

let test_fingerprint_console_unambiguous () =
  (* ["ab"] vs ["a"; "b"]: same bytes, different line structure *)
  let v1 = tiny_vm () and v2 = tiny_vm () in
  Vm.add_console v1 "ab";
  Vm.add_console v2 "a";
  Vm.add_console v2 "b";
  checkb "console lines are length-prefixed" false
    (Vm.fingerprint v1 = Vm.fingerprint v2)

(* ---------------- edge keys and the edge cache ---------------------- *)

let test_edge_key_boundaries () =
  List.iter
    (fun record ->
      let vm = tiny_vm () in
      Vm.reset_coverage vm;
      (* the extreme in-range edge survives the key packing intact *)
      record vm Vm.edge_pc_max Vm.edge_pc_max;
      checkb "max edge roundtrips" true
        (Vm.coverage_edges vm = [ (Vm.edge_pc_max, Vm.edge_pc_max) ]);
      (* out-of-range on either side is dropped, not aliased *)
      record vm (Vm.edge_pc_max + 1) 5;
      record vm 5 (Vm.edge_pc_max + 1);
      record vm (-1) 5;
      record vm 5 (-1);
      checki "out-of-range edges dropped" 1 (Vm.coverage_size vm))
    [ Vm.record_edge; Vm.record_edge_fast ]

let test_edge_cache_reset () =
  (* a cached edge must not survive reset_coverage: if a stale cache hit
     skipped the table insert, the edge would be lost after a reset *)
  let vm = tiny_vm () in
  Vm.reset_coverage vm;
  Vm.record_edge_fast vm 3 4;
  Vm.record_edge_fast vm 3 4;
  checki "one edge, once" 1 (Vm.coverage_size vm);
  Vm.reset_coverage vm;
  checki "reset clears coverage" 0 (Vm.coverage_size vm);
  Vm.record_edge_fast vm 3 4;
  checki "re-recorded after reset" 1 (Vm.coverage_size vm);
  checkb "and extractable" true (Vm.coverage_edges vm = [ (3, 4) ])

let test_edges_sorted_and_mixed () =
  (* both extraction sources (insertion log / table fold) must agree,
     and the list is sorted *)
  let vm = tiny_vm () in
  Vm.reset_coverage vm;
  Vm.record_edge_fast vm 9 1;
  Vm.record_edge_fast vm 2 8;
  Vm.record_edge_fast vm 2 3;
  checkb "log path sorted" true (Vm.coverage_edges vm = [ (2, 3); (2, 8); (9, 1) ]);
  (* a legacy insert invalidates the log; the fold path must return the
     same sorted list *)
  Vm.record_edge vm 1 1;
  checkb "fold path sorted" true
    (Vm.coverage_edges vm = [ (1, 1); (2, 3); (2, 8); (9, 1) ])

(* ---------------- sink frame plumbing ------------------------------- *)

let test_sink_access_capacity () =
  let s = Vm.make_sink () in
  let a =
    {
      Trace.thread = 0;
      pc = 1;
      addr = 0x100;
      size = 8;
      kind = Trace.Read;
      value = 0;
      atomic = false;
      sp = Vmm.Layout.stack_top 0 - 32;
    }
  in
  for i = 1 to Vm.sink_capacity do
    Vm.sink_push_access s a;
    checki "accesses accumulate" i s.Vm.sk_n_acc
  done;
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "vm: sink access overflow") (fun () ->
      Vm.sink_push_access s a);
  Vm.sink_clear s;
  checki "clear empties the frame" 0 s.Vm.sk_n_acc

let test_events_sunk_counter () =
  let env = Lazy.force env in
  let before = Vm.events_sunk env.Exec.vm in
  let prog = [ { P.nr = Kernel.Abi.sys_socket; args = [ P.Const 1; P.Const 0 ] } ] in
  ignore (Exec.run_seq env ~tid:0 prog);
  checkb "sink executions count sunk events" true
    (Vm.events_sunk env.Exec.vm > before)

(* ---------------- threaded code: decode, cache, quantum ------------- *)

let test_threaded_decode () =
  let env = Lazy.force env in
  let tc = env.Exec.tcode in
  checkb "threaded code covers the image" true (Vmm.Tcode.length tc > 0);
  checkb "the kernel image has fusable pairs" true
    (Vmm.Tcode.fused_pairs tc > 0);
  checkb "cache is identity-keyed" true
    (Vmm.Tcode.for_image env.Exec.kern.Kernel.image == tc)

let test_stale_tcode_rejected () =
  (* two builds of the same config are distinct images; applying one
     image's threaded code to the other must fail loudly, not execute
     the wrong program *)
  let e1 = Exec.make_env Kernel.Config.v5_12_rc3 in
  let e2 = Exec.make_env Kernel.Config.v5_12_rc3 in
  checkb "fresh builds are distinct images" false
    (Vmm.Tcode.same_image e1.Exec.tcode e2.Exec.kern.Kernel.image);
  let sink = Vm.make_sink () in
  Vm.restore e2.Exec.vm e2.Exec.snap;
  Alcotest.check_raises "stale threaded code rejected"
    (Invalid_argument
       "vm: stale threaded code: decoded from a different image (rebuild \
        via Tcode.for_image)") (fun () ->
      ignore (Vm.run_tblock e2.Exec.vm e1.Exec.tcode ~tid:0 ~quantum:8 sink))

(* [run_tblock] respects the quantum exactly, like [run_block]: quantum 1
   is per-instruction stepping (fused pairs retire one half per step),
   and the instruction count is identical either way. *)
let test_threaded_quantum () =
  let env = Lazy.force env in
  let start () =
    Vm.restore env.Exec.vm env.Exec.snap;
    Vm.start_call env.Exec.vm 0 env.Exec.kern.Kernel.syscall_entry [ 1; 0 ];
    Vm.set_reg env.Exec.vm 0 Isa.r12 Kernel.Abi.sys_open
  in
  let sink = Vm.make_sink () in
  start ();
  let steps = ref 0 in
  while Vm.cpu_mode env.Exec.vm 0 = Vm.Kernel && !steps < 100_000 do
    ignore (Vm.run_tblock env.Exec.vm env.Exec.tcode ~tid:0 ~quantum:1 sink);
    checki "quantum 1 retires exactly one instruction" 1 sink.Vm.sk_steps;
    incr steps
  done;
  start ();
  let total = ref 0 in
  while Vm.cpu_mode env.Exec.vm 0 = Vm.Kernel && !total < 100_000 do
    ignore (Vm.run_tblock env.Exec.vm env.Exec.tcode ~tid:0 ~quantum:7 sink);
    checkb "quantum bounds the block" true (sink.Vm.sk_steps <= 7);
    total := !total + sink.Vm.sk_steps
  done;
  checki "same instruction count either way" !steps !total

(* ---------------- block-batched concurrent execution ---------------- *)

(* Run the same seeded snowboard trial twice on the same env: once
   batched (the policy's [event_only] declaration intact), once with it
   forced off (per-step loop).  Everything observable — the result
   record, the recorded decision trace and the flight-recorder stream —
   must be byte-identical. *)
let conc_batch_run env ~(s : Harness.Scenarios.scenario) ~hint ~seed ~batch =
  let rng = Random.State.make [| seed |] in
  let st = Policies.snowboard_state hint in
  let inner = Policies.snowboard rng st in
  let inner = { inner with Exec.event_only = inner.Exec.event_only && batch } in
  let rec_ = Replay.record inner in
  Obs.Event.reset ();
  let res =
    Exec.run_conc env ~writer:s.Harness.Scenarios.writer
      ~reader:s.Harness.Scenarios.reader ~policy:rec_.Replay.policy ()
  in
  (* [Vm.steps] accumulates across trials on the same VM, so absolute
     virtual clocks carry a per-trial baseline; rebase on the trial's
     first event to compare the streams themselves *)
  let evs =
    match Obs.Event.events () with
    | [] -> []
    | e0 :: _ as evs ->
        List.map
          (fun (e : Obs.Event.t) ->
            { e with Obs.Event.vclock = e.Obs.Event.vclock - e0.Obs.Event.vclock })
          evs
  in
  let seen = Obs.Event.seen () in
  (res, Replay.to_string (rec_.Replay.finish ()), evs, seen)

let test_conc_batch_identical () =
  let env = Lazy.force env in
  Obs.Event.configure ~capacity:4096 ~deterministic:true ~enabled:true ();
  let scenarios =
    [ List.nth Harness.Scenarios.all 11 (* #12 l2tp *);
      List.nth Harness.Scenarios.all 0 (* #1 rhashtable *) ]
  in
  List.iter
    (fun s ->
      for seed = 1 to 3 do
        let r_b, t_b, e_b, n_b = conc_batch_run env ~s ~hint:None ~seed ~batch:true in
        let r_p, t_p, e_p, n_p =
          conc_batch_run env ~s ~hint:None ~seed ~batch:false
        in
        checkb "batched result = per-step result" true (r_b = r_p);
        Alcotest.(check string) "batched trace = per-step trace" t_p t_b;
        checkb "batched flight record = per-step flight record" true (e_b = e_p);
        checki "same events seen" n_p n_b
      done)
    scenarios;
  Obs.Event.configure ~enabled:false ()

let test_conc_batch_identical_hinted () =
  (* same, under a PMC hint: the hint-window machinery (flags, windows,
     hit/miss classification) runs at events only, so batching must not
     perturb it either *)
  let env = Lazy.force env in
  let s = List.nth Harness.Scenarios.all 0 (* #1 rhashtable *) in
  let _, hints = Harness.Scenarios.identify env s in
  checkb "scenario yields hints" true (hints <> []);
  let hint = Some (List.hd hints) in
  Obs.Event.configure ~capacity:4096 ~deterministic:true ~enabled:true ();
  for seed = 1 to 3 do
    let r_b, t_b, e_b, n_b = conc_batch_run env ~s ~hint ~seed ~batch:true in
    let r_p, t_p, e_p, n_p = conc_batch_run env ~s ~hint ~seed ~batch:false in
    checkb "hinted: batched result = per-step result" true (r_b = r_p);
    Alcotest.(check string) "hinted: batched trace = per-step trace" t_p t_b;
    checkb "hinted: same flight record" true (e_b = e_p);
    checki "hinted: same events seen" n_p n_b
  done;
  Obs.Event.configure ~enabled:false ()

(* A trace recorded under batching replays on the per-step loop (and
   vice versa): the '0's [on_plain] appends stand in exactly for the
   skipped consultations. *)
let test_conc_batch_trace_replays () =
  let env = Lazy.force env in
  let s = List.nth Harness.Scenarios.all 11 (* #12 l2tp *) in
  let r_b, t_b, _, _ = conc_batch_run env ~s ~hint:None ~seed:5 ~batch:true in
  match Replay.of_string t_b with
  | None -> Alcotest.fail "recorded trace does not parse"
  | Some trace ->
      let r_r =
        Exec.run_conc env ~writer:s.Harness.Scenarios.writer
          ~reader:s.Harness.Scenarios.reader ~policy:(Replay.replay trace) ()
      in
      checkb "batch-recorded trace replays per-step" true (r_b = r_r)

(* ---------------- edge cache generation wrap ------------------------ *)

let test_edge_cache_generation_wrap () =
  (* the 15-bit generation tag wraps after 0x7fff resets; the wrap clears
     the cache outright, so a pre-wrap entry can never validate against a
     post-wrap generation and swallow a fresh edge *)
  let vm = tiny_vm () in
  Vm.reset_coverage vm;
  Vm.record_edge_fast vm 3 4;
  for _ = 1 to 0x8000 do
    Vm.reset_coverage vm
  done;
  checki "wrap leaves coverage empty" 0 (Vm.coverage_size vm);
  Vm.record_edge_fast vm 3 4;
  checki "edge re-recorded across the wrap" 1 (Vm.coverage_size vm);
  checkb "and extractable" true (Vm.coverage_edges vm = [ (3, 4) ])

(* ---------------- throughput gauge guard ---------------------------- *)

let test_note_throughput_guard () =
  let g = Obs.Metrics.gauge ~unit_:"instr/s" "snowboard.sched/steps_per_sec" in
  Obs.Metrics.set g 0;
  Exec.note_throughput ~steps:1000 ~seconds:0.;
  checki "zero elapsed leaves the gauge alone" 0 (Obs.Metrics.gauge_value g);
  Exec.note_throughput ~steps:1000 ~seconds:(-1.);
  checki "negative elapsed leaves the gauge alone" 0 (Obs.Metrics.gauge_value g);
  Exec.note_throughput ~steps:0 ~seconds:1.;
  checki "zero steps leaves the gauge alone" 0 (Obs.Metrics.gauge_value g);
  Exec.note_throughput ~steps:max_int ~seconds:1e-300;
  checkb "tiny elapsed still yields a representable rate" true
    (Obs.Metrics.gauge_value g >= 0);
  Exec.note_throughput ~steps:1_000_000 ~seconds:0.5;
  checki "a sane rate is recorded" 2_000_000 (Obs.Metrics.gauge_value g)

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_sink_block_equivalent; prop_shared_profile_equivalent ]

let tests =
  [
    Alcotest.test_case "lockstep event lists" `Quick test_lockstep_events;
    Alcotest.test_case "block quantum" `Quick test_block_quantum;
    Alcotest.test_case "fingerprint regs" `Quick test_fingerprint_regs_unambiguous;
    Alcotest.test_case "fingerprint console" `Quick
      test_fingerprint_console_unambiguous;
    Alcotest.test_case "edge key boundaries" `Quick test_edge_key_boundaries;
    Alcotest.test_case "edge cache reset" `Quick test_edge_cache_reset;
    Alcotest.test_case "edges sorted, log and fold" `Quick
      test_edges_sorted_and_mixed;
    Alcotest.test_case "sink capacity" `Quick test_sink_access_capacity;
    Alcotest.test_case "events sunk counter" `Quick test_events_sunk_counter;
    Alcotest.test_case "threaded decode + cache" `Quick test_threaded_decode;
    Alcotest.test_case "stale threaded code" `Quick test_stale_tcode_rejected;
    Alcotest.test_case "threaded quantum" `Quick test_threaded_quantum;
    Alcotest.test_case "conc batching byte-identical" `Quick
      test_conc_batch_identical;
    Alcotest.test_case "conc batching byte-identical (hinted)" `Quick
      test_conc_batch_identical_hinted;
    Alcotest.test_case "batch-recorded trace replays" `Quick
      test_conc_batch_trace_replays;
    Alcotest.test_case "edge cache generation wrap" `Quick
      test_edge_cache_generation_wrap;
    Alcotest.test_case "throughput gauge guard" `Quick
      test_note_throughput_guard;
  ]

let () = Alcotest.run "exec" [ ("sink+block", qtests @ tests) ]
