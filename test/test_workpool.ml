(* The work-stealing pool and the warm VM pool: determinism (results in
   item order, byte-identical for any worker count or steal seed),
   failure containment, and the lease/restore observational-equivalence
   oracle. *)

module Vm = Vmm.Vm
module Vmpool = Vmm.Vmpool
module Workpool = Harness.Workpool
module Exec = Sched.Exec

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- Workpool: pool result = sequential map ----------- *)

(* The pool must return exactly [Array.mapi f items] whatever the worker
   count, seed or steal interleaving — including the empty and
   single-item batches that never leave the calling domain. *)
let prop_pool_equals_map =
  QCheck.Test.make ~name:"workpool equals sequential map" ~count:60
    QCheck.(
      triple (int_range 0 40) (int_range 1 8) (int_range 0 1_000_000))
    (fun (n, jobs, seed) ->
      let items = Array.init n (fun i -> (i * 7) + seed) in
      let expected = Array.map (fun x -> (x * x) + 1) items in
      let got =
        Workpool.run ~jobs ~seed
          ~worker:(fun w -> w)
          ~f:(fun _ _ x -> (x * x) + 1)
          ~fallback:(fun _ _ exn -> raise exn)
          items
      in
      got = expected)

(* [f] receives each item's own global index, never a renumbered one —
   per-test seeds depend on it. *)
let prop_pool_passes_global_index =
  QCheck.Test.make ~name:"workpool passes global indices" ~count:40
    QCheck.(pair (int_range 0 40) (int_range 1 8))
    (fun (n, jobs) ->
      let items = Array.init n (fun i -> i) in
      let got =
        Workpool.run ~jobs
          ~worker:(fun w -> w)
          ~f:(fun _ i _ -> i)
          ~fallback:(fun _ _ exn -> raise exn)
          items
      in
      got = items)

let test_pool_failed_item_uses_fallback () =
  let items = Array.init 9 (fun i -> i) in
  let results =
    Workpool.run ~jobs:3
      ~worker:(fun w -> w)
      ~f:(fun _ _ x -> if x mod 4 = 2 then failwith "poisoned" else x * 10)
      ~fallback:(fun i _ exn ->
        match exn with Failure _ -> -i | _ -> raise exn)
      items
  in
  Array.iteri
    (fun i r ->
      if i mod 4 = 2 then checki "fallback slot" (-i) r
      else checki "normal slot" (i * 10) r)
    results

let test_pool_dead_worker_retires_not_fatal () =
  (* worker 1's context constructor dies; the survivor(s) still run
     every item *)
  let items = Array.init 12 (fun i -> i) in
  let results =
    Workpool.run ~jobs:3
      ~worker:(fun w -> if w = 1 then failwith "boot failed" else w)
      ~f:(fun _ _ x -> x + 100)
      ~fallback:(fun _ _ _ -> -1)
      items
  in
  checkb "all items executed by survivors" true
    (Array.for_all (fun r -> r >= 100) results)

let test_pool_all_workers_dead_falls_back () =
  let items = Array.init 5 (fun i -> i) in
  let results =
    Workpool.run ~jobs:2
      ~worker:(fun _ -> failwith "no machine")
      ~f:(fun _ _ x -> x)
      ~fallback:(fun i _ _ -> 1000 + i)
      items
  in
  checkb "every item fell back" true
    (Array.for_all2 (fun r i -> r = 1000 + i) results items)

let test_pool_finish_runs_per_worker () =
  let finished = Atomic.make 0 in
  let items = Array.init 20 (fun i -> i) in
  ignore
    (Workpool.run ~jobs:4
       ~worker:(fun w -> w)
       ~finish:(fun _ _ -> Atomic.incr finished)
       ~f:(fun _ _ x -> x)
       ~fallback:(fun _ _ exn -> raise exn)
       items);
  checki "finish ran once per worker" 4 (Atomic.get finished)

(* ---------------- Pipeline.shard edge cases ------------------------ *)

let test_shard_rejects_nonpositive () =
  Alcotest.check_raises "zero workers"
    (Invalid_argument "shard: worker count must be positive, got 0")
    (fun () -> ignore (Harness.Pipeline.shard 0 [ 1; 2; 3 ]));
  Alcotest.check_raises "negative workers"
    (Invalid_argument "shard: worker count must be positive, got -2")
    (fun () -> ignore (Harness.Pipeline.shard (-2) [ 1 ]))

let test_shard_more_workers_than_items () =
  let shards = Harness.Pipeline.shard 5 [ "a"; "b" ] in
  checki "shard count" 5 (Array.length shards);
  checkb "items round-robin into the first shards" true
    (shards.(0) = [ "a" ] && shards.(1) = [ "b" ]);
  checkb "excess shards empty" true
    (shards.(2) = [] && shards.(3) = [] && shards.(4) = []);
  checkb "empty input, all empty" true
    (Array.for_all (( = ) []) (Harness.Pipeline.shard 3 ([] : int list)))

let test_default_domains () =
  let unset () = Unix.putenv "SNOWBOARD_MAX_DOMAINS" "" in
  unset ();
  checkb "at least one worker" true (Harness.Parallel.default_domains () >= 1);
  Unix.putenv "SNOWBOARD_MAX_DOMAINS" "1";
  checki "env cap applies" 1 (Harness.Parallel.default_domains ());
  Unix.putenv "SNOWBOARD_MAX_DOMAINS" "not-a-number";
  checkb "garbage cap ignored" true (Harness.Parallel.default_domains () >= 1);
  unset ()

(* ---------------- Vmpool bookkeeping ------------------------------- *)

let counting_pool ?on_transfer ?on_release () =
  let boots = ref 0 in
  let p =
    Vmpool.create
      ~boot:(fun () ->
        incr boots;
        !boots)
      ?on_transfer ?on_release ()
  in
  (p, boots)

let test_vmpool_affinity_hit () =
  let p, boots = counting_pool () in
  let a = Vmpool.lease p ~worker:0 in
  Vmpool.release p ~worker:0 a;
  let b = Vmpool.lease p ~worker:0 in
  checki "same machine back" a b;
  checki "one boot" 1 !boots;
  checki "booted" 1 (Vmpool.booted p);
  checki "none free while leased" 0 (Vmpool.available p)

let test_vmpool_never_steals_other_workers_machine () =
  (* worker 1 must boot its own machine rather than take worker 0's
     release — boot counts must not depend on lease/release timing *)
  let p, boots = counting_pool () in
  let a = Vmpool.lease p ~worker:0 in
  Vmpool.release p ~worker:0 a;
  let b = Vmpool.lease p ~worker:1 in
  checkb "fresh machine for the new worker" true (b <> a);
  checki "two boots" 2 !boots

let test_vmpool_transfer_only_from_prewarm () =
  let transfers = ref [] in
  let p, boots =
    counting_pool ~on_transfer:(fun v -> transfers := v :: !transfers) ()
  in
  Vmpool.prewarm p 2;
  checki "prewarm boots" 2 !boots;
  checki "prewarm is idempotent" 2 (Vmpool.booted p);
  Vmpool.prewarm p 2;
  checki "no extra boots" 2 !boots;
  let a = Vmpool.lease p ~worker:0 in
  let b = Vmpool.lease p ~worker:1 in
  checki "both leases served from the warm set" 2 !boots;
  checki "both transfers re-armed" 2 (List.length !transfers);
  Vmpool.release p ~worker:0 a;
  Vmpool.release p ~worker:1 b;
  let a' = Vmpool.lease p ~worker:0 in
  checki "affinity hit is not a transfer" 2 (List.length !transfers);
  checki "same machine" a a'

let test_vmpool_on_release_hook () =
  let released = ref 0 in
  let p, _ = counting_pool ~on_release:(fun _ -> incr released) () in
  let a = Vmpool.lease p ~worker:0 in
  Vmpool.release p ~worker:0 a;
  checki "hook ran" 1 !released;
  checki "machine back on the free list" 1 (Vmpool.available p)

(* ---------------- warm VM lease/restore equivalence ---------------- *)

(* Restoring a leased VM — via the dirty-delta shortcut on an affinity
   hit, or the full blit after a transfer's [invalidate_delta] — must
   leave guest state byte-identical to the [restore_full] oracle.
   Random programs dirty different page sets each round. *)
let prop_lease_restore_equivalent =
  QCheck.Test.make ~name:"pool lease/restore matches restore_full oracle"
    ~count:20
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let env = Exec.make_env Kernel.Config.v5_12_rc3 in
      let prog = Fuzzer.Gen.generate (Random.State.make [| seed |]) in
      (* oracle: run, then unconditional full blit *)
      ignore (Exec.run_seq env ~tid:0 prog);
      Vm.restore_full env.Exec.vm env.Exec.snap;
      let fp_oracle = Vm.fingerprint env.Exec.vm in
      (* affinity hit: delta intact, dirty-page restore *)
      ignore (Exec.run_seq env ~tid:0 prog);
      Vm.restore env.Exec.vm env.Exec.snap;
      checkb "dirty restore" true (Vm.fingerprint env.Exec.vm = fp_oracle);
      (* transfer: delta dropped, next restore full-blits and re-arms *)
      ignore (Exec.run_seq env ~tid:0 prog);
      Vm.invalidate_delta env.Exec.vm;
      Vm.restore env.Exec.vm env.Exec.snap;
      checkb "post-transfer restore" true
        (Vm.fingerprint env.Exec.vm = fp_oracle);
      (* and the delta re-armed: the next cycle dirty-restores again *)
      ignore (Exec.run_seq env ~tid:0 prog);
      Vm.restore env.Exec.vm env.Exec.snap;
      Vm.fingerprint env.Exec.vm = fp_oracle)

(* ---------------- parallel phases vs the sequential oracle --------- *)

let small_cfg =
  {
    Harness.Pipeline.default with
    Harness.Pipeline.fuzz_iters = 100;
    trials_per_test = 4;
  }

let t = lazy (Harness.Pipeline.prepare small_cfg)

(* Work-stealing corpus profiling must merge to the same profile list
   and step count as the sequential profiler, for any job count and
   with the static oracle too. *)
let test_profile_parallel_equivalent () =
  let t = Lazy.force t in
  let env = Exec.make_env small_cfg.Harness.Pipeline.kernel in
  let seq_profiles, seq_steps =
    Harness.Pipeline.profile_corpus env t.Harness.Pipeline.corpus
  in
  List.iter
    (fun jobs ->
      let p, s =
        Harness.Pipeline.profile_corpus_parallel ~jobs
          ~kernel:small_cfg.Harness.Pipeline.kernel t.Harness.Pipeline.corpus
      in
      checkb (Printf.sprintf "profiles identical at jobs=%d" jobs) true
        (p = seq_profiles);
      checki (Printf.sprintf "steps identical at jobs=%d" jobs) seq_steps s)
    [ 1; 2; 3 ];
  let p, s =
    Harness.Pipeline.profile_corpus_parallel ~static:true ~jobs:2
      ~kernel:small_cfg.Harness.Pipeline.kernel t.Harness.Pipeline.corpus
  in
  checkb "static oracle identical" true (p = seq_profiles && s = seq_steps)

(* The parallel explore fan-out must produce identical method stats —
   bug reports, outcome tallies, everything — to the sequential runner,
   for several worker counts and steal seeds (the seed shapes victim
   order only, so stats must not move with it). *)
let test_explore_parallel_equivalent () =
  let t = Lazy.force t in
  let method_ = Core.Select.Strategy Core.Cluster.S_MEM in
  let budget = 10 in
  let seq = Harness.Pipeline.run_method t method_ ~budget in
  List.iter
    (fun domains ->
      let par = Harness.Parallel.run_method ~domains t method_ ~budget in
      checkb (Printf.sprintf "stats identical at domains=%d" domains) true
        (par = seq))
    [ 1; 2; 4 ];
  let par_static =
    Harness.Parallel.run_method ~domains:2 ~static:true t method_ ~budget
  in
  checkb "static oracle identical" true (par_static = seq)

(* Different campaign seeds change the victim permutation the pool
   uses; the permutation must never leak into results. *)
let prop_steal_seed_invisible =
  QCheck.Test.make ~name:"steal seed does not shape results" ~count:8
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let items = Array.init 23 (fun i -> i) in
      let expected = Array.map (fun x -> x * 3) items in
      Workpool.run ~jobs:4 ~seed
        ~worker:(fun w -> w)
        ~f:(fun _ _ x -> x * 3)
        ~fallback:(fun _ _ exn -> raise exn)
        items
      = expected)

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "workpool"
    [
      ( "workpool",
        [
          QCheck_alcotest.to_alcotest prop_pool_equals_map;
          QCheck_alcotest.to_alcotest prop_pool_passes_global_index;
          QCheck_alcotest.to_alcotest prop_steal_seed_invisible;
          Alcotest.test_case "failed item uses fallback" `Quick
            test_pool_failed_item_uses_fallback;
          Alcotest.test_case "dead worker retires, survivors finish" `Quick
            test_pool_dead_worker_retires_not_fatal;
          Alcotest.test_case "all workers dead falls back" `Quick
            test_pool_all_workers_dead_falls_back;
          Alcotest.test_case "finish runs per worker" `Quick
            test_pool_finish_runs_per_worker;
        ] );
      ( "sharding",
        [
          Alcotest.test_case "shard rejects n <= 0" `Quick
            test_shard_rejects_nonpositive;
          Alcotest.test_case "more workers than items" `Quick
            test_shard_more_workers_than_items;
          Alcotest.test_case "default_domains" `Quick test_default_domains;
        ] );
      ( "vmpool",
        qsuite [ prop_lease_restore_equivalent ]
        @ [
            Alcotest.test_case "affinity hit" `Quick test_vmpool_affinity_hit;
            Alcotest.test_case "never steals another worker's machine" `Quick
              test_vmpool_never_steals_other_workers_machine;
            Alcotest.test_case "transfer only from prewarm" `Quick
              test_vmpool_transfer_only_from_prewarm;
            Alcotest.test_case "on_release hook" `Quick
              test_vmpool_on_release_hook;
          ] );
      ( "parallel oracle",
        [
          Alcotest.test_case "profile phase equals sequential" `Slow
            test_profile_parallel_equivalent;
          Alcotest.test_case "explore phase equals sequential" `Slow
            test_explore_parallel_equivalent;
        ] );
    ]
