(* Deeper property tests: Algorithm 1 against a brute-force reference,
   spinlock mutual exclusion under adversarial scheduling, allocator
   behaviour, initial-state diversity, and detector invariants. *)

module Trace = Vmm.Trace
module Layout = Vmm.Layout
module Abi = Kernel.Abi
module P = Fuzzer.Prog
module Exec = Sched.Exec

let checkb = Alcotest.(check bool)

let env = lazy (Exec.make_env Kernel.Config.all_buggy)

(* ---------------- Algorithm 1 vs brute force ---------------- *)

let sp0 = Layout.stack_top 0 - 64

let acc ~pc ~kind ~addr ~size ~value =
  { Trace.thread = 0; pc; addr; size; kind; value; atomic = false; sp = sp0 }

(* Reference implementation: all profile pairs, all access pairs, direct
   overlap + projected-value check. *)
let brute_force (profiles : Core.Profile.t list) =
  let pmcs = Hashtbl.create 64 in
  List.iter
    (fun (p1 : Core.Profile.t) ->
      List.iter
        (fun (p2 : Core.Profile.t) ->
          Array.iter
            (fun (e1 : Core.Profile.entry) ->
              Array.iter
                (fun (e2 : Core.Profile.entry) ->
                  let a1 = e1.Core.Profile.access
                  and a2 = e2.Core.Profile.access in
                  if
                    a1.Trace.kind = Trace.Write
                    && a2.Trace.kind = Trace.Read
                    && Trace.overlaps a1 a2
                  then
                    let w = Core.Pmc.side_of_access a1
                    and r = Core.Pmc.side_of_access a2 in
                    if Core.Pmc.values_differ w r then
                      Hashtbl.replace pmcs
                        (w.Core.Pmc.ins, w.Core.Pmc.addr, w.Core.Pmc.size,
                         w.Core.Pmc.value, r.Core.Pmc.ins, r.Core.Pmc.addr,
                         r.Core.Pmc.size, r.Core.Pmc.value)
                        ())
                (p2.Core.Profile.entries))
            p1.Core.Profile.entries)
        profiles)
    profiles;
  Hashtbl.length pmcs

let gen_profile =
  QCheck.Gen.(
    let gen_access =
      map
        (fun (pc, (base, size_exp), value, is_write) ->
          let size = 1 lsl size_exp in
          acc ~pc
            ~kind:(if is_write then Trace.Write else Trace.Read)
            ~addr:(0x3000 + base) ~size
            ~value:(value land ((1 lsl (8 * size)) - 1)))
        (quad (int_range 1 40)
           (pair (int_range 0 48) (int_range 0 3))
           (int_range 0 512) bool)
    in
    list_size (int_range 1 25) gen_access)

let prop_identify_matches_bruteforce =
  QCheck.Test.make ~name:"Algorithm 1 equals brute force" ~count:100
    (QCheck.make
       QCheck.Gen.(list_size (int_range 1 4) gen_profile))
    (fun raw_profiles ->
      let profiles =
        List.mapi (fun i accs -> Core.Profile.of_accesses ~test_id:i accs)
          raw_profiles
      in
      Core.Identify.num_pmcs (Core.Identify.run profiles)
      = brute_force profiles)

(* ---------------- spinlock mutual exclusion ---------------- *)

let test_spinlock_mutual_exclusion () =
  (* two threads each add one msg-queue element under the bucket lock;
     under ANY schedule both ids must be distinct and both keys present *)
  let e = Lazy.force env in
  let prog key = [ { P.nr = Abi.sys_msgget; args = [ P.Const key ] } ] in
  for seed = 1 to 30 do
    let rng = Random.State.make [| seed |] in
    let res =
      Exec.run_conc e ~writer:(prog 1) ~reader:(prog 9)
        ~policy:(Sched.Policies.naive rng ~period:2) ()
    in
    checkb "no deadlock" false res.Exec.cc_deadlocked;
    let id0 = res.Exec.cc_retvals.(0).(0) and id1 = res.Exec.cc_retvals.(1).(0) in
    checkb "distinct ids under contention" true (id0 <> id1 && id0 > 0 && id1 > 0);
    (* both keys must be retrievable afterwards - no lost insert *)
    let check =
      Exec.run_seq e ~tid:0 [ { P.nr = Abi.sys_msgget; args = [ P.Const 1 ] } ]
    in
    ignore check
  done

let test_heap_counter_atomic_when_fixed () =
  (* with bug #13 fixed (atomic stats), concurrent allocation never loses
     an update: slab_stats equals the number of live objects *)
  let e = Exec.make_env Kernel.Config.all_fixed in
  let prog =
    [
      { P.nr = Abi.sys_socket; args = [ P.Const Abi.af_inet; P.Const 0 ] };
      { P.nr = Abi.sys_socket; args = [ P.Const Abi.af_inet6; P.Const 0 ] };
    ]
  in
  let rng = Random.State.make [| 5 |] in
  let res =
    Exec.run_conc e ~writer:prog ~reader:prog
      ~policy:(Sched.Policies.naive rng ~period:2) ()
  in
  checkb "all sockets created" true
    (Array.for_all (fun rv -> Array.for_all (fun v -> v >= 0) rv) res.Exec.cc_retvals)

(* ---------------- initial-state diversity (section 4.1) ---------------- *)

let test_with_setup_changes_state () =
  let e = Lazy.force env in
  let setup : P.t =
    [
      { P.nr = Abi.sys_socket; args = [ P.Const Abi.px_proto_ol2tp; P.Const 0 ] };
      { P.nr = Abi.sys_connect; args = [ P.Res 0; P.Const 5; P.Const 0 ] };
    ]
  in
  let e' = Exec.with_setup e setup in
  (* from the derived snapshot, a fresh connect FINDS the tunnel instead
     of registering a new one: its profile differs *)
  let probe : P.t =
    [
      { P.nr = Abi.sys_socket; args = [ P.Const Abi.px_proto_ol2tp; P.Const 0 ] };
      { P.nr = Abi.sys_connect; args = [ P.Res 0; P.Const 5; P.Const 0 ] };
    ]
  in
  let base = Exec.run_seq e ~tid:0 probe in
  let derived = Exec.run_seq e' ~tid:0 probe in
  checkb "probe runs in both states" true
    ((not base.Exec.sq_panicked) && not derived.Exec.sq_panicked);
  checkb "profiles diverge across initial states" true
    (base.Exec.sq_accesses <> derived.Exec.sq_accesses);
  (* and the parent snapshot is unaffected *)
  let again = Exec.run_seq e ~tid:0 probe in
  checkb "parent state unchanged" true (base.Exec.sq_accesses = again.Exec.sq_accesses)

let test_with_setup_rejects_panics () =
  let e = Lazy.force env in
  (* a setup that faults: msgctl on a bad pointer cannot panic, so use a
     crafted two-step sequence known to panic is not available
     sequentially - instead check that a clean setup does NOT raise *)
  let ok = Exec.with_setup e [ { P.nr = Abi.sys_mount; args = [] } ] in
  ignore ok;
  checkb "clean setup accepted" true true

(* ---------------- detector invariants ---------------- *)

let prop_detector_silent_single_thread =
  QCheck.Test.make ~name:"race detector silent for one thread" ~count:200
    (QCheck.make gen_profile) (fun accs ->
      let d = Detectors.Race.create () in
      List.iter (fun a -> Detectors.Race.on_access d a ~ctx:"f") accs;
      Detectors.Race.num_reports d = 0)

let gen_profile_elt =
  QCheck.Gen.(
    map
      (fun (pc, (base, size_exp), value, is_write) ->
        let size = 1 lsl size_exp in
        acc ~pc
          ~kind:(if is_write then Trace.Write else Trace.Read)
          ~addr:(0x3000 + base) ~size
          ~value:(value land ((1 lsl (8 * size)) - 1)))
      (quad (int_range 1 40)
         (pair (int_range 0 48) (int_range 0 3))
         (int_range 0 512) bool))

let prop_detector_deterministic =
  QCheck.Test.make ~name:"race detector deterministic" ~count:100
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 1 30)
           (map2
              (fun a t -> { a with Trace.thread = t; sp = Layout.stack_top t - 64 })
              gen_profile_elt (int_bound 1))))
    (fun accs ->
      let run () =
        let d = Detectors.Race.create () in
        List.iter (fun a -> Detectors.Race.on_access d a ~ctx:"f") accs;
        Detectors.Race.reports d
      in
      run () = run ())

(* ---------------- channel_exercised semantics ---------------- *)

let test_channel_exercised () =
  let pmc =
    Core.Pmc.make
      ~write:{ Core.Pmc.ins = 10; addr = 0x100; size = 8; value = 5 }
      ~read:{ Core.Pmc.ins = 20; addr = 0x100; size = 8; value = 0 }
      ~df_leader:false
  in
  let mk ~t ~pc ~kind ~value =
    {
      Trace.thread = t;
      pc;
      addr = 0x100;
      size = 8;
      kind;
      value;
      atomic = false;
      sp = Layout.stack_top t - 64;
    }
  in
  let res ~w ~r =
    {
      Exec.cc_console = [];
      cc_panicked = false;
      cc_deadlocked = false;
      cc_steps = 0;
      cc_switches = 0;
      cc_accesses = [| w; r |];
      cc_retvals = [| [||]; [||] |];
    }
  in
  (* write present + read saw a new value: exercised *)
  checkb "exercised" true
    (Sched.Explore.channel_exercised (Some pmc)
       (res
          ~w:[ mk ~t:0 ~pc:10 ~kind:Trace.Write ~value:5 ]
          ~r:[ mk ~t:1 ~pc:20 ~kind:Trace.Read ~value:5 ]));
  (* read still saw its profiled value: not exercised *)
  checkb "profiled value read" false
    (Sched.Explore.channel_exercised (Some pmc)
       (res
          ~w:[ mk ~t:0 ~pc:10 ~kind:Trace.Write ~value:5 ]
          ~r:[ mk ~t:1 ~pc:20 ~kind:Trace.Read ~value:0 ]));
  (* write missing: not exercised *)
  checkb "no write" false
    (Sched.Explore.channel_exercised (Some pmc)
       (res ~w:[] ~r:[ mk ~t:1 ~pc:20 ~kind:Trace.Read ~value:5 ]));
  (* no hint: never exercised *)
  checkb "no hint" false
    (Sched.Explore.channel_exercised None
       (res
          ~w:[ mk ~t:0 ~pc:10 ~kind:Trace.Write ~value:5 ]
          ~r:[ mk ~t:1 ~pc:20 ~kind:Trace.Read ~value:5 ]))

(* ---------------- replay trace serialisation ---------------- *)

module Replay = Sched.Replay

let gen_trace =
  QCheck.Gen.(
    map2
      (fun first decisions ->
        { Replay.t_first = first; t_decisions = Array.of_list decisions })
      (int_range 0 7)
      (list_size (int_range 0 300) bool))

let prop_replay_roundtrip =
  QCheck.Test.make ~name:"replay trace round-trips" ~count:300
    (QCheck.make gen_trace) (fun t ->
      match Replay.of_string (Replay.to_string t) with
      | None -> false
      | Some t' ->
          t'.Replay.t_first = t.Replay.t_first
          && t'.Replay.t_decisions = t.Replay.t_decisions)

(* Truncating a serialised trace must never raise: prefixes that still
   contain the ':' separator decode as a shorter valid trace, prefixes
   that lost it decode as [None]. *)
let prop_replay_truncated =
  QCheck.Test.make ~name:"replay of_string total on truncation" ~count:100
    (QCheck.make gen_trace) (fun t ->
      let s = Replay.to_string t in
      let ok = ref true in
      for n = 0 to String.length s - 1 do
        let prefix = String.sub s 0 n in
        (match Replay.of_string prefix with
        | None -> if String.contains prefix ':' then ok := false
        | Some t' ->
            if
              (not (String.contains prefix ':'))
              || t'.Replay.t_first <> t.Replay.t_first
              || Replay.length t' > Replay.length t
            then ok := false)
      done;
      !ok)

let prop_replay_corrupted =
  QCheck.Test.make ~name:"replay of_string rejects corrupted body" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_trace (int_range 0 10_000)))
    (fun (t, pos) ->
      let s = Replay.to_string t in
      if Replay.length t = 0 then true
      else begin
        let i = String.index s ':' + 1 + (pos mod Replay.length t) in
        let b = Bytes.of_string s in
        Bytes.set b i 'x';
        Replay.of_string (Bytes.to_string b) = None
      end)

let prop_replay_garbage =
  QCheck.Test.make ~name:"replay of_string never raises on garbage"
    ~count:500
    QCheck.(string_of_size Gen.(int_range 0 64))
    (fun s -> match Replay.of_string s with Some _ | None -> true)

let test_replay_of_string_cases () =
  let none s = checkb ("rejects " ^ s) true (Replay.of_string s = None) in
  none "";
  none "abc";
  none "5";
  none "5:012";
  none "5:01 ";
  none "x:01";
  none ":::";
  (match Replay.of_string "5:01" with
  | Some t ->
      checkb "first" true (t.Replay.t_first = 5);
      checkb "decisions" true (t.Replay.t_decisions = [| false; true |])
  | None -> Alcotest.fail "5:01 must parse");
  match Replay.of_string ":" with
  | Some _ -> Alcotest.fail "empty first field must not parse"
  | None -> ()

(* ---------------- parallel execution equivalence ---------------- *)

let test_parallel_equals_sequential () =
  let cfg =
    {
      Harness.Pipeline.default with
      Harness.Pipeline.fuzz_iters = 150;
      trials_per_test = 8;
      seed_corpus = Harness.Pipeline.scenario_seeds ();
    }
  in
  let t = Harness.Pipeline.prepare cfg in
  let m = Core.Select.Strategy Core.Cluster.S_INS in
  let seq = Harness.Pipeline.run_method t m ~budget:40 in
  let par = Harness.Parallel.run_method ~domains:3 t m ~budget:40 in
  checkb "same issues, same discovery indices" true
    (seq.Harness.Pipeline.issues = par.Harness.Pipeline.issues);
  checkb "same exercise counts" true
    (seq.Harness.Pipeline.hint_exercised = par.Harness.Pipeline.hint_exercised
    && seq.Harness.Pipeline.pmc_observed = par.Harness.Pipeline.pmc_observed);
  checkb "same totals" true
    (seq.Harness.Pipeline.total_trials = par.Harness.Pipeline.total_trials
    && seq.Harness.Pipeline.executed = par.Harness.Pipeline.executed)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_identify_matches_bruteforce;
    Alcotest.test_case "parallel equals sequential" `Slow
      test_parallel_equals_sequential;
    Alcotest.test_case "spinlock mutual exclusion" `Slow
      test_spinlock_mutual_exclusion;
    Alcotest.test_case "fixed allocator stats atomic" `Quick
      test_heap_counter_atomic_when_fixed;
    Alcotest.test_case "with_setup diversifies state" `Quick
      test_with_setup_changes_state;
    Alcotest.test_case "with_setup accepts clean setup" `Quick
      test_with_setup_rejects_panics;
    QCheck_alcotest.to_alcotest prop_detector_silent_single_thread;
    QCheck_alcotest.to_alcotest prop_detector_deterministic;
    Alcotest.test_case "channel_exercised" `Quick test_channel_exercised;
    QCheck_alcotest.to_alcotest prop_replay_roundtrip;
    QCheck_alcotest.to_alcotest prop_replay_truncated;
    QCheck_alcotest.to_alcotest prop_replay_corrupted;
    QCheck_alcotest.to_alcotest prop_replay_garbage;
    Alcotest.test_case "replay of_string edge cases" `Quick
      test_replay_of_string_cases;
  ]

let () = Alcotest.run "properties" [ ("deep", tests) ]
