(* The crash-consistent storage layer: CRC framing, total recovery from
   arbitrary truncation and bit corruption, atomic artifact writes with
   typed ENOSPC/EIO errors and bounded retry, the deterministic
   crashpoint harness, and fsck.

   The flagship property at the bottom: for ANY journal, ANY truncation
   offset and ANY single bit-flip, the v3 reader returns the longest
   valid record prefix without raising, and a resume from the recovered
   prefix is prefix-consistent with the uninterrupted journal. *)

module Storage = Obs.Storage
module Durable = Harness.Durable
module Pipeline = Harness.Pipeline
module Supervise = Harness.Supervise
module Checkpoint = Harness.Checkpoint

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let write_raw path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let read_raw path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* every test leaves the global crashpoint/injector state clean *)
let pristine f () =
  Fun.protect
    ~finally:(fun () ->
      Storage.disarm_crash ();
      Storage.set_fault_injector None;
      Storage.reset_degraded ())
    f

(* ---------------- CRC and framing ---------------- *)

let test_crc32_vectors () =
  checki "check vector" 0xcbf43926 (Durable.crc32 "123456789");
  checki "empty" 0 (Durable.crc32 "");
  checkb "sensitive to one bit" false
    (Durable.crc32 "123456789" = Durable.crc32 "123456788")

let test_frame_roundtrip () =
  let payloads =
    [
      "";
      "x";
      "{\"a\": 1}";
      "payload with\nnewlines\nand \"quotes\"";
      "SB3 deadbeef cafebabe\nlooks like a frame header";
      String.make 3000 'z';
    ]
  in
  let bytes = String.concat "" (List.map Durable.frame payloads) in
  let records, rc = Durable.scan bytes in
  checkb "round-trip" true (records = payloads);
  checkb "clean" true (Durable.clean rc);
  checki "records counted" (List.length payloads) rc.Durable.rc_records;
  checki "all bytes valid" (String.length bytes) rc.Durable.rc_valid_bytes;
  checki "nothing dropped" 0 rc.Durable.rc_dropped_records;
  List.iter
    (fun p ->
      checki "frame overhead" (String.length p + Durable.frame_overhead)
        (String.length (Durable.frame p)))
    payloads

let sample_records =
  [ "alpha"; "{\"k\": [1,2,3]}"; ""; String.make 200 'q'; "omega\nend" ]

let sample_bytes = lazy (String.concat "" (List.map Durable.frame sample_records))

let is_prefix_of full recs =
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | x :: a', y :: b' -> x = y && go a' b'
    | _ :: _, [] -> false
  in
  go recs full

let test_truncation_every_offset () =
  let bytes = Lazy.force sample_bytes in
  for cut = 0 to String.length bytes do
    let recs, rc = Durable.scan (String.sub bytes 0 cut) in
    checkb "valid prefix" true (is_prefix_of sample_records recs);
    checkb "valid bytes within cut" true (rc.Durable.rc_valid_bytes <= cut);
    checki "total is the input size" cut rc.Durable.rc_total_bytes;
    if cut < String.length bytes then
      checkb "short scan reports a tail or a clean boundary" true
        (rc.Durable.rc_dropped_bytes = cut - rc.Durable.rc_valid_bytes)
  done

let test_bitflip_every_byte () =
  let bytes = Lazy.force sample_bytes in
  for i = 0 to String.length bytes - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string bytes in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      let recs, _ = Durable.scan (Bytes.to_string b) in
      (* CRC-32 detects every single-bit error, so no corrupted record
         can survive: the result is always a prefix of the original *)
      checkb "bit flip yields a valid prefix" true
        (is_prefix_of sample_records recs)
    done
  done

let test_scan_garbage () =
  List.iter
    (fun junk ->
      let recs, rc = Durable.scan junk in
      checkb "no records from junk" true (recs = []);
      checkb "junk is all dropped" true
        (rc.Durable.rc_dropped_bytes = String.length junk))
    [ "not a journal"; "SB3 "; "SB3 zzzzzzzz zzzzzzzz\n"; String.make 50 '\000' ]

(* ---------------- atomic writes, retry, degradation ---------------- *)

let test_write_atomic () =
  pristine (fun () ->
      let path = Filename.temp_file "snowboard_durable" ".out" in
      (match Storage.write_atomic ~site:"t.atomic" ~path "hello" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write failed: %s" (Storage.err_to_string e));
      checks "content" "hello" (read_raw path);
      (* no temp residue after a clean write *)
      let dir = Filename.dirname path and base = Filename.basename path in
      Array.iter
        (fun n ->
          checkb "no stale tmp" false
            (String.length n > String.length base
            && String.sub n 0 (String.length base) = base))
        (Sys.readdir dir);
      Sys.remove path)
    ()

let test_injected_enospc_degrades () =
  pristine (fun () ->
      Storage.set_fault_injector
        (Some (fun ~site:_ ~attempt:_ -> Some Storage.Enospc));
      let path = Filename.temp_file "snowboard_durable" ".out" in
      write_raw path "old";
      (match Storage.write_atomic ~site:"t.enospc" ~path "new" with
      | Error Storage.Enospc -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Storage.err_to_string e)
      | Ok () -> Alcotest.fail "injected ENOSPC must fail");
      checks "destination untouched" "old" (read_raw path);
      (match Storage.degraded () with
      | [ ("t.enospc", Storage.Enospc) ] -> ()
      | l -> Alcotest.failf "degradation list has %d entries" (List.length l));
      Sys.remove path)
    ()

let test_injected_transient_retries () =
  pristine (fun () ->
      (* fail the first two attempts only: bounded retry must succeed on
         the third and record no degradation *)
      let calls = ref 0 in
      Storage.set_fault_injector
        (Some
           (fun ~site:_ ~attempt ->
             incr calls;
             if attempt < Storage.max_attempts then Some Storage.Eio else None));
      let path = Filename.temp_file "snowboard_durable" ".out" in
      (match Storage.write_atomic ~site:"t.transient" ~path "v" with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "retries should succeed: %s" (Storage.err_to_string e));
      checks "written on the final attempt" "v" (read_raw path);
      checki "injector consulted once per attempt" Storage.max_attempts !calls;
      checkb "no degradation" true (Storage.degraded () = []);
      Sys.remove path)
    ()

let test_sweep_stale_tmp () =
  let path = Filename.temp_file "snowboard_durable" ".ck" in
  let stale = path ^ ".4242.7.tmp" in
  write_raw stale "torn temp from a dead writer";
  checki "swept" 1 (Storage.sweep_stale_tmp path);
  checkb "gone" false (Sys.file_exists stale);
  checki "idempotent" 0 (Storage.sweep_stale_tmp path);
  Sys.remove path

(* ---------------- crashpoints ---------------- *)

let test_crash_spec_parse () =
  (match Storage.parse_crash_spec "checkpoint.append:3" with
  | Ok ("checkpoint.append", 3) -> ()
  | _ -> Alcotest.fail "site:k should parse");
  List.iter
    (fun bad ->
      match Storage.parse_crash_spec bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should be rejected" bad)
    [ ""; "nosite"; ":3"; "site:"; "site:0"; "site:-1"; "site:x" ]

let test_crashpoint_tears_append () =
  pristine (fun () ->
      let path = Filename.temp_file "snowboard_durable" ".ck" in
      let w =
        match
          Durable.create_writer ~header_site:"t.header" ~append_site:"t.append"
            ~path ~initial:[ "header" ]
        with
        | Ok w -> w
        | Error e -> Alcotest.failf "create: %s" (Storage.err_to_string e)
      in
      (match Durable.append_record w "first" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "append: %s" (Storage.err_to_string e));
      Storage.arm_crash ~mode:Storage.Raise ~site:"t.append" ~k:1 ();
      (match Durable.append_record w "second" with
      | exception Storage.Crash_simulated site -> checks "site named" "t.append" site
      | Ok () -> Alcotest.fail "armed crashpoint must fire"
      | Error e -> Alcotest.failf "expected crash, got %s" (Storage.err_to_string e));
      Durable.close_writer w;
      (* the file now holds two whole frames plus a torn half-frame; the
         scanner recovers exactly the whole ones *)
      let recs, rc = Durable.scan (read_raw path) in
      checkb "recovered the durable prefix" true (recs = [ "header"; "first" ]);
      checkb "torn tail detected" false (Durable.clean rc);
      checki "one torn record" 1 rc.Durable.rc_dropped_records;
      Sys.remove path)
    ()

let test_crashpoint_any_counts_all_sites () =
  pristine (fun () ->
      Storage.arm_crash ~mode:Storage.Raise ~site:"any" ~k:3 ();
      let p1 = Filename.temp_file "snowboard_durable" ".a" in
      let p2 = Filename.temp_file "snowboard_durable" ".b" in
      let ok site path =
        match Storage.write_atomic ~site ~path "x" with
        | Ok () -> ()
        | Error e -> Alcotest.failf "write: %s" (Storage.err_to_string e)
      in
      ok "t.any1" p1;
      ok "t.any2" p2;
      (match Storage.write_atomic ~site:"t.any3" ~path:p1 "y" with
      | exception Storage.Crash_simulated _ -> ()
      | _ -> Alcotest.fail "third durable write overall must crash");
      Sys.remove p1;
      Sys.remove p2)
    ()

let test_seeded_plan_deterministic () =
  pristine (fun () ->
      (* the seeded plan must be a pure function of the seed; observe it
         by counting how many writes happen before the crash fires *)
      let fires seed =
        Storage.arm_crash_seeded ~mode:Storage.Raise ~seed ();
        let path = Filename.temp_file "snowboard_durable" ".s" in
        let n = ref 0 in
        (try
           for _ = 1 to 64 do
             match Storage.write_atomic ~site:"t.seeded" ~path "x" with
             | Ok () -> incr n
             | Error _ -> ()
           done
         with Storage.Crash_simulated _ -> ());
        Storage.disarm_crash ();
        Sys.remove path;
        !n
      in
      checki "same seed, same placement" (fires 11) (fires 11);
      checkb "fires within the first few dozen writes" true (fires 5 < 64))
    ()

(* ---------------- checkpoint v3 + recovery ---------------- *)

let sample_result ~index ~outcome =
  {
    Pipeline.tr_index = index;
    tr_hinted = index mod 2 = 0;
    tr_outcome = outcome;
    tr_retries = index mod 3;
    tr_exercised = true;
    tr_pmc_observed = false;
    tr_issues = [ 13 ];
    tr_unknown = 0;
    tr_trials = 4;
    tr_steps = 900 + index;
    tr_hint_hits = index;
    tr_miss_no_write = 0;
    tr_miss_no_read = 1;
    tr_miss_value = 0;
    tr_prof = [ ("poll_wait", 10 + index, 2) ];
    tr_bug = None;
  }

let sample_entries n =
  List.init n (fun i ->
      {
        Checkpoint.ck_method = (if i mod 2 = 0 then "S-INS" else "S-MEM");
        ck_result = sample_result ~index:(i + 1) ~outcome:Supervise.Ok;
      })

let test_checkpoint_recovers_torn_tail () =
  let path = Filename.temp_file "snowboard_durable" ".ck" in
  let entries = sample_entries 6 in
  Checkpoint.save path { Checkpoint.ck_fingerprint = "fp-t"; ck_entries = entries };
  let whole = read_raw path in
  (* tear mid-way through the final frame, as a power loss would *)
  write_raw path (String.sub whole 0 (String.length whole - 12));
  (match Checkpoint.load_ex path with
  | Error msg -> Alcotest.failf "recovery must not error: %s" msg
  | Ok (f, recovery) ->
      checks "fingerprint survives" "fp-t" f.Checkpoint.ck_fingerprint;
      checki "one entry lost" 5 (List.length f.Checkpoint.ck_entries);
      checkb "recovered prefix in order" true
        (List.map (fun e -> e.Checkpoint.ck_result.Pipeline.tr_index)
           f.Checkpoint.ck_entries
        = [ 1; 2; 3; 4; 5 ]);
      match recovery with
      | Some rc ->
          checkb "drop reported" true (rc.Durable.rc_dropped_records >= 1)
      | None -> Alcotest.fail "framed journal must report recovery");
  Sys.remove path

let test_checkpoint_v2_compat () =
  let path = Filename.temp_file "snowboard_durable" ".ck" in
  write_raw path
    "{\"schema\": \"snowboard/checkpoint/v2\", \"fingerprint\": \"fp-legacy\", \
     \"entries\": []}";
  (match Checkpoint.load_ex path with
  | Error msg -> Alcotest.failf "v2 must stay readable: %s" msg
  | Ok (f, recovery) ->
      checks "fingerprint" "fp-legacy" f.Checkpoint.ck_fingerprint;
      checkb "no frame recovery for v2" true (recovery = None));
  Sys.remove path

let test_checkpoint_wrong_framed_schema () =
  let path = Filename.temp_file "snowboard_durable" ".ck" in
  write_raw path (Durable.frame "{\"schema\": \"other/v9\", \"fingerprint\": \"x\"}");
  (match Checkpoint.load path with
  | Error msg -> checkb "names the schema" true (contains ~sub:"schema" msg)
  | Ok _ -> Alcotest.fail "foreign framed schema must be an error");
  Sys.remove path

let test_sink_append_only_grows () =
  (* the sink must append, not rewrite: earlier bytes never change *)
  let path = Filename.temp_file "snowboard_durable" ".ck" in
  let sink = Checkpoint.create_sink ~path ~fingerprint:"fp-a" ~initial:[] in
  Checkpoint.record sink ~method_:"S-INS"
    (sample_result ~index:1 ~outcome:Supervise.Ok);
  let after_one = read_raw path in
  Checkpoint.record sink ~method_:"S-INS"
    (sample_result ~index:2 ~outcome:(Supervise.Timed_out 9));
  let after_two = read_raw path in
  checkb "append-only" true
    (String.length after_two > String.length after_one
    && String.sub after_two 0 (String.length after_one) = after_one);
  (match Checkpoint.load path with
  | Ok f -> checki "both records" 2 (List.length f.Checkpoint.ck_entries)
  | Error msg -> Alcotest.failf "load: %s" msg);
  Sys.remove path

let test_sink_degrades_on_storage_failure () =
  pristine (fun () ->
      let path = Filename.temp_file "snowboard_durable" ".ck" in
      let sink = Checkpoint.create_sink ~path ~fingerprint:"fp-d" ~initial:[] in
      let before = read_raw path in
      Storage.set_fault_injector
        (Some (fun ~site:_ ~attempt:_ -> Some Storage.Enospc));
      (* never raises: the campaign must keep running on a full disk *)
      Checkpoint.record sink ~method_:"S-INS"
        (sample_result ~index:1 ~outcome:Supervise.Ok);
      Storage.set_fault_injector None;
      checkb "degradation recorded" true (Storage.degraded () <> []);
      checks "journal bytes untouched" before (read_raw path);
      (* in-memory accumulation continues after degrading *)
      Checkpoint.record sink ~method_:"S-INS"
        (sample_result ~index:2 ~outcome:Supervise.Ok);
      checki "entries kept in memory" 2 (List.length (Checkpoint.entries sink));
      Sys.remove path)
    ()

(* ---------------- fsck ---------------- *)

let test_fsck_clean_and_repair () =
  let path = Filename.temp_file "snowboard_durable" ".ck" in
  Checkpoint.save path
    { Checkpoint.ck_fingerprint = "fp-f"; ck_entries = sample_entries 4 };
  (match Durable.fsck path with
  | Ok r ->
      checkb "clean" true r.Durable.fk_clean;
      checkb "v3" true (r.Durable.fk_format = Durable.V3);
      checki "entries" 4 r.Durable.fk_entries;
      checkb "schema read" true
        (r.Durable.fk_schema = Some "snowboard/checkpoint/v3")
  | Error msg -> Alcotest.failf "fsck: %s" msg);
  let whole = read_raw path in
  write_raw path (String.sub whole 0 (String.length whole - 30));
  (match Durable.fsck path with
  | Ok r -> checkb "corrupt detected" false r.Durable.fk_clean
  | Error msg -> Alcotest.failf "fsck: %s" msg);
  (match Durable.fsck ~repair:true path with
  | Ok r -> checkb "repaired" true r.Durable.fk_repaired
  | Error msg -> Alcotest.failf "fsck repair: %s" msg);
  (match Durable.fsck path with
  | Ok r ->
      checkb "clean after repair" true r.Durable.fk_clean;
      checki "entries after repair" 3 r.Durable.fk_entries
  | Error msg -> Alcotest.failf "fsck: %s" msg);
  (* the repaired journal loads as the recovered prefix *)
  (match Checkpoint.load path with
  | Ok f -> checki "loadable prefix" 3 (List.length f.Checkpoint.ck_entries)
  | Error msg -> Alcotest.failf "load after repair: %s" msg);
  Sys.remove path

let test_fsck_legacy_and_junk () =
  let path = Filename.temp_file "snowboard_durable" ".ck" in
  write_raw path "{\"schema\": \"snowboard/checkpoint/v2\", \"entries\": []}";
  (match Durable.fsck path with
  | Ok r ->
      checkb "legacy recognised" true (r.Durable.fk_format = Durable.Legacy_json);
      checkb "legacy clean" true r.Durable.fk_clean
  | Error msg -> Alcotest.failf "fsck: %s" msg);
  write_raw path "complete nonsense";
  (match Durable.fsck path with
  | Ok r ->
      checkb "junk flagged" true (r.Durable.fk_format = Durable.Unknown);
      checkb "junk not clean" false r.Durable.fk_clean
  | Error msg -> Alcotest.failf "fsck: %s" msg);
  Sys.remove path;
  match Durable.fsck path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing file must be an fsck error"

(* ---------------- qcheck: totality and prefix recovery ---------------- *)

let payload_gen =
  QCheck.Gen.(
    string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 40))

let journal_gen = QCheck.Gen.(list_size (int_range 1 8) payload_gen)

let prop_truncate_and_flip_total =
  QCheck.Test.make ~name:"scan is total and prefix-exact under corruption"
    ~count:200
    QCheck.(
      make
        Gen.(
          let* recs = journal_gen in
          let* cut = int_range 0 10_000 in
          let* flip_at = int_range 0 10_000 in
          let* flip_bit = int_range 0 7 in
          return (recs, cut, flip_at, flip_bit)))
    (fun (recs, cut, flip_at, flip_bit) ->
      let bytes = String.concat "" (List.map Durable.frame recs) in
      let cut = cut mod (String.length bytes + 1) in
      let truncated = String.sub bytes 0 cut in
      let corrupted =
        if cut = 0 then truncated
        else begin
          let b = Bytes.of_string truncated in
          let i = flip_at mod cut in
          Bytes.set b i
            (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl flip_bit)));
          Bytes.to_string b
        end
      in
      let got, rc = Durable.scan corrupted in
      let rec prefix a b =
        match (a, b) with
        | [], _ -> true
        | x :: a', y :: b' -> x = y && prefix a' b'
        | _ :: _, [] -> false
      in
      prefix got recs
      && rc.Durable.rc_valid_bytes <= String.length corrupted
      && rc.Durable.rc_valid_bytes + rc.Durable.rc_dropped_bytes
         = String.length corrupted)

let prop_checkpoint_recovery_prefix_consistent =
  QCheck.Test.make
    ~name:"checkpoint recovery is resume-prefix-consistent" ~count:60
    QCheck.(
      make Gen.(pair (int_range 1 8) (int_range 0 10_000)))
    (fun (n, cut) ->
      let path = Filename.temp_file "snowboard_durable" ".q" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let entries = sample_entries n in
          Checkpoint.save path
            { Checkpoint.ck_fingerprint = "fp-q"; ck_entries = entries };
          let whole = read_raw path in
          let cut = cut mod (String.length whole + 1) in
          write_raw path (String.sub whole 0 cut);
          match Checkpoint.load path with
          | Error _ ->
              (* only acceptable when even the header record is gone *)
              let recs, _ = Durable.scan (String.sub whole 0 cut) in
              recs = []
          | Ok f ->
              (* the recovered entries are exactly a prefix of what was
                 journaled: resuming re-runs the tail and nothing else *)
              f.Checkpoint.ck_fingerprint = "fp-q"
              && List.length f.Checkpoint.ck_entries <= n
              && f.Checkpoint.ck_entries
                 = List.filteri
                     (fun i _ -> i < List.length f.Checkpoint.ck_entries)
                     entries))

(* ---------------- driver ---------------- *)

let tests =
  [
    Alcotest.test_case "crc32 vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "truncation at every offset" `Quick
      test_truncation_every_offset;
    Alcotest.test_case "bit flip at every byte" `Slow test_bitflip_every_byte;
    Alcotest.test_case "garbage input" `Quick test_scan_garbage;
    Alcotest.test_case "atomic write" `Quick test_write_atomic;
    Alcotest.test_case "injected ENOSPC degrades" `Quick
      test_injected_enospc_degrades;
    Alcotest.test_case "transient faults are retried" `Quick
      test_injected_transient_retries;
    Alcotest.test_case "stale tmp sweep" `Quick test_sweep_stale_tmp;
    Alcotest.test_case "crash spec parsing" `Quick test_crash_spec_parse;
    Alcotest.test_case "crashpoint tears the append" `Quick
      test_crashpoint_tears_append;
    Alcotest.test_case "any-site crash plan" `Quick
      test_crashpoint_any_counts_all_sites;
    Alcotest.test_case "seeded crash plan is deterministic" `Quick
      test_seeded_plan_deterministic;
    Alcotest.test_case "checkpoint recovers a torn tail" `Quick
      test_checkpoint_recovers_torn_tail;
    Alcotest.test_case "checkpoint v2 compat" `Quick test_checkpoint_v2_compat;
    Alcotest.test_case "wrong framed schema" `Quick
      test_checkpoint_wrong_framed_schema;
    Alcotest.test_case "sink is append-only" `Quick test_sink_append_only_grows;
    Alcotest.test_case "sink degrades without raising" `Quick
      test_sink_degrades_on_storage_failure;
    Alcotest.test_case "fsck clean/corrupt/repair" `Quick
      test_fsck_clean_and_repair;
    Alcotest.test_case "fsck legacy and junk" `Quick test_fsck_legacy_and_junk;
    QCheck_alcotest.to_alcotest prop_truncate_and_flip_total;
    QCheck_alcotest.to_alcotest prop_checkpoint_recovery_prefix_consistent;
  ]

let () = Alcotest.run "durable" [ ("durable", tests) ]
