(* Unit tests for the hypervisor substrate: ISA semantics, the assembler
   and linker, VM stepping, memory translation, faults, snapshots and the
   shared-access (stack) filter. *)

module Isa = Vmm.Isa
module Asm = Vmm.Asm
module Vm = Vmm.Vm
module Layout = Vmm.Layout
module Trace = Vmm.Trace
open Isa

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* Assemble a tiny function, run it on vCPU 0 and return the VM. *)
let run_fn ?(args = []) body =
  let a = Asm.create () in
  Asm.func a "f" (fun () -> body a);
  let image = Asm.link a in
  let vm = Vm.create image in
  Vm.start_call vm 0 (Asm.entry image "f") args;
  let budget = ref 10_000 in
  let events = ref [] in
  let rec go () =
    if !budget <= 0 then failwith "test: budget exceeded";
    decr budget;
    let evs = Vm.step vm 0 in
    events := List.rev_append evs !events;
    if
      List.exists
        (function Vm.Eret_to_user | Vm.Ehalt | Vm.Epanic _ -> true | _ -> false)
        evs
    then ()
    else go ()
  in
  go ();
  (vm, List.rev !events)

let emit a l = List.iter (Asm.emit a) l

let test_arith () =
  let vm, _ =
    run_fn ~args:[ 6; 7 ] (fun a ->
        emit a
          [
            Bin (Mul, r2, r0, Reg r1);
            Bin (Add, r2, r2, Imm 8);
            Bin (Sub, r2, r2, Imm 20);
            Bin (Shl, r3, r2, Imm 2);
            Bin (Shr, r4, r3, Imm 1);
            Bin (And, r5, r4, Imm 0xf);
            Bin (Or, r5, r5, Imm 0x10);
            Bin (Xor, r5, r5, Imm 0x1);
            Bin (Div, r6, r4, Imm 4);
            Ret;
          ])
  in
  checki "mul+add-sub" 30 (Vm.reg vm 0 r2);
  checki "shl" 120 (Vm.reg vm 0 r3);
  checki "shr" 60 (Vm.reg vm 0 r4);
  checki "and/or/xor" 0x1d (Vm.reg vm 0 r5);
  checki "div" 15 (Vm.reg vm 0 r6)

let test_div_by_zero () =
  let vm, _ =
    run_fn (fun a -> emit a [ Li (r1, 5); Bin (Div, r2, r1, Imm 0); Ret ])
  in
  checki "div by zero yields 0" 0 (Vm.reg vm 0 r2)

let test_load_store_sizes () =
  let addr = Layout.kdata_base in
  let vm, _ =
    run_fn (fun a ->
        emit a
          [
            Li (r1, addr);
            Li (r2, 0x1122334455667788);
            Store { base = r1; off = 0; src = Reg r2; size = 8; atomic = false };
            Load { dst = r3; base = r1; off = 0; size = 1; atomic = false };
            Load { dst = r4; base = r1; off = 0; size = 2; atomic = false };
            Load { dst = r5; base = r1; off = 0; size = 4; atomic = false };
            Load { dst = r6; base = r1; off = 3; size = 2; atomic = false };
            Ret;
          ])
  in
  checki "byte" 0x88 (Vm.reg vm 0 r3);
  checki "half" 0x7788 (Vm.reg vm 0 r4);
  checki "word" 0x55667788 (Vm.reg vm 0 r5);
  checki "unaligned half" 0x4455 (Vm.reg vm 0 r6)

let test_store_truncates () =
  let addr = Layout.kdata_base in
  let vm, _ =
    run_fn (fun a ->
        emit a
          [
            Li (r1, addr);
            Li (r2, 0x1ff);
            Store { base = r1; off = 0; src = Reg r2; size = 1; atomic = false };
            Load { dst = r3; base = r1; off = 0; size = 8; atomic = false };
            Ret;
          ])
  in
  checki "1-byte store truncated" 0xff (Vm.reg vm 0 r3)

let test_cas () =
  let addr = Layout.kdata_base in
  let vm, _ =
    run_fn (fun a ->
        emit a
          [
            Li (r1, addr);
            Cas { dst = r2; base = r1; off = 0; expected = Imm 0; desired = Imm 42 };
            Cas { dst = r3; base = r1; off = 0; expected = Imm 0; desired = Imm 7 };
            Load { dst = r4; base = r1; off = 0; size = 8; atomic = false };
            Faa { dst = r5; base = r1; off = 0; delta = Imm 3 };
            Load { dst = r6; base = r1; off = 0; size = 8; atomic = false };
            Ret;
          ])
  in
  checki "cas success flag" 1 (Vm.reg vm 0 r2);
  checki "cas failure flag" 0 (Vm.reg vm 0 r3);
  checki "cas stored" 42 (Vm.reg vm 0 r4);
  checki "faa old" 42 (Vm.reg vm 0 r5);
  checki "faa new" 45 (Vm.reg vm 0 r6)

let test_branches () =
  let a = Asm.create () in
  Asm.func a "f" (fun () ->
      Asm.emit a (Br (Lt, r0, Imm 10, "less"));
      Asm.emit a (Li (r1, 0));
      Asm.emit a Ret;
      Asm.label a "less";
      Asm.emit a (Li (r1, 1));
      Asm.emit a Ret);
  let image = Asm.link a in
  let run arg =
    let vm = Vm.create image in
    Vm.start_call vm 0 (Asm.entry image "f") [ arg ];
    let rec go n =
      if n = 0 then failwith "budget";
      if List.exists (function Vm.Eret_to_user -> true | _ -> false) (Vm.step vm 0)
      then Vm.reg vm 0 r1
      else go (n - 1)
    in
    go 100
  in
  checki "taken" 1 (run 5);
  checki "not taken" 0 (run 15)

let test_call_ret_stack () =
  let a = Asm.create () in
  Asm.func a "callee" (fun () ->
      Asm.emit a (Bin (Add, r0, r0, Imm 1));
      Asm.emit a Ret);
  Asm.func a "f" (fun () ->
      Asm.emit a (Call "callee");
      Asm.emit a (Call "callee");
      Asm.emit a Ret);
  let image = Asm.link a in
  let vm = Vm.create image in
  Vm.start_call vm 0 (Asm.entry image "f") [ 0 ];
  let rec go n =
    if n = 0 then failwith "budget";
    if List.exists (function Vm.Eret_to_user -> true | _ -> false) (Vm.step vm 0)
    then ()
    else go (n - 1)
  in
  go 100;
  checki "nested calls" 2 (Vm.reg vm 0 r0);
  (* the final Ret pops the sentinel, leaving sp at the stack top *)
  checki "stack pointer restored" (Layout.stack_top 0) (Vm.reg vm 0 sp)

let test_null_fault () =
  let vm, events =
    run_fn (fun a ->
        emit a
          [ Li (r1, 0); Load { dst = r2; base = r1; off = 8; size = 8; atomic = false } ])
  in
  checkb "panicked" true (Vm.panicked vm);
  checkb "fault event" true
    (List.exists (function Vm.Efault 8 -> true | _ -> false) events);
  checkb "console mentions NULL deref" true
    (List.exists
       (fun l ->
         String.length l > 4 && String.sub l 0 4 = "BUG:")
       (Vm.console_lines vm))

let test_unmapped_fault () =
  let vm, _ =
    run_fn (fun a ->
        emit a
          [
            Li (r1, Layout.kmem_size + 0x1000);
            Load { dst = r2; base = r1; off = 0; size = 8; atomic = false };
          ])
  in
  checkb "panicked on unmapped" true (Vm.panicked vm)

let test_user_memory_isolated () =
  let addr = Layout.user_base + 16 in
  let a = Asm.create () in
  Asm.func a "f" (fun () ->
      Asm.emit a (Li (r1, addr));
      Asm.emit a (Store { base = r1; off = 0; src = Imm 99; size = 8; atomic = false });
      Asm.emit a Ret);
  let image = Asm.link a in
  let vm = Vm.create image in
  Vm.start_call vm 0 (Asm.entry image "f") [];
  let rec go n =
    if n = 0 then failwith "budget";
    if List.exists (function Vm.Eret_to_user -> true | _ -> false) (Vm.step vm 0)
    then ()
    else go (n - 1)
  in
  go 100;
  checki "thread 0 sees its write" 99 (Vm.peek vm 0 addr 8);
  checki "thread 1 does not" 0 (Vm.peek vm 1 addr 8)

let test_snapshot_restore () =
  let addr = Layout.kdata_base + 64 in
  let a = Asm.create () in
  Asm.func a "f" (fun () ->
      Asm.emit a (Li (r1, addr));
      Asm.emit a (Store { base = r1; off = 0; src = Imm 7; size = 8; atomic = false });
      Asm.emit a Ret);
  let image = Asm.link a in
  let vm = Vm.create image in
  let snap = Vm.snapshot vm in
  Vm.start_call vm 0 (Asm.entry image "f") [];
  let rec go n =
    if n = 0 then failwith "budget";
    if List.exists (function Vm.Eret_to_user -> true | _ -> false) (Vm.step vm 0)
    then ()
    else go (n - 1)
  in
  go 100;
  checki "written" 7 (Vm.peek vm 0 addr 8);
  Vm.restore vm snap;
  checki "restored" 0 (Vm.peek vm 0 addr 8)

let test_data_init_and_regions () =
  let a = Asm.create () in
  let g = Asm.global_words a "g" [ 11; 22 ] in
  Asm.func a "f" (fun () -> Asm.emit a Ret);
  let image = Asm.link a in
  let vm = Vm.create image in
  checki "init word 0" 11 (Vm.peek vm 0 g 8);
  checki "init word 1" 22 (Vm.peek vm 0 (g + 8) 8);
  (match Asm.region_of_addr image (g + 8) with
  | Some r -> check Alcotest.string "region name" "g" r.Asm.name
  | None -> Alcotest.fail "region not found");
  checkb "no region below" true (Asm.region_of_addr image 0 = None)

let test_funcptr_table () =
  let a = Asm.create () in
  Asm.func a "h1" (fun () -> Asm.emit a Ret);
  Asm.func a "h2" (fun () -> Asm.emit a Ret);
  let tbl = Asm.global_funcs a "tbl" [ "h2"; "h1" ] in
  let image = Asm.link a in
  let vm = Vm.create image in
  checki "slot 0 is h2" (Asm.entry image "h2") (Vm.peek vm 0 tbl 8);
  checki "slot 1 is h1" (Asm.entry image "h1") (Vm.peek vm 0 (tbl + 8) 8)

let test_undefined_label () =
  let a = Asm.create () in
  Asm.func a "f" (fun () -> Asm.emit a (Jmp "nowhere"));
  Alcotest.check_raises "undefined label"
    (Invalid_argument "asm: undefined label nowhere") (fun () ->
      ignore (Asm.link a))

let test_duplicate_label () =
  let a = Asm.create () in
  Asm.label a "x";
  Alcotest.check_raises "duplicate label" (Invalid_argument "asm: duplicate label x")
    (fun () -> Asm.label a "x")

let test_func_name_map () =
  let a = Asm.create () in
  Asm.func a "first" (fun () -> Asm.emit a Ret);
  Asm.func a "second" (fun () ->
      Asm.emit a (Li (r0, 1));
      Asm.emit a Ret);
  let image = Asm.link a in
  check Alcotest.string "pc 0" "first" (Asm.func_name image 0);
  check Alcotest.string "second start" "second"
    (Asm.func_name image (Asm.entry image "second"));
  check Alcotest.string "out of range" "<unknown:0x1869f>"
    (Asm.func_name image 99999);
  check Alcotest.string "negative pc" (Asm.unknown_name (-1))
    (Asm.func_name image (-1))

(* Attribution is total: code emitted outside any [func] extent (padding
   before the first function) still gets a stable printable name. *)
let test_func_name_padding () =
  let a = Asm.create () in
  Asm.label a "pad";
  Asm.emit a Halt;
  Asm.func a "real" (fun () -> Asm.emit a Ret);
  let image = Asm.link a in
  check Alcotest.string "padding pc" "<unknown:0x0>" (Asm.func_name image 0);
  check Alcotest.string "function pc" "real"
    (Asm.func_name image (Asm.entry image "real"))

let test_console_format () =
  let a = Asm.create () in
  let m = Asm.msg a "value %d and %d" in
  Asm.func a "f" (fun () ->
      Asm.emit a (Li (r0, 42));
      Asm.emit a (Li (r1, 7));
      Asm.emit a (Hyper (Hconsole m));
      Asm.emit a Ret);
  let image = Asm.link a in
  let vm = Vm.create image in
  Vm.start_call vm 0 (Asm.entry image "f") [];
  let rec go n =
    if n = 0 then failwith "budget";
    if List.exists (function Vm.Eret_to_user -> true | _ -> false) (Vm.step vm 0)
    then ()
    else go (n - 1)
  in
  go 100;
  check
    Alcotest.(list string)
    "formatted" [ "value 42 and 7" ] (Vm.console_lines vm)

let test_coverage_edges () =
  let a = Asm.create () in
  Asm.func a "f" (fun () ->
      Asm.emit a (Br (Eq, r0, Imm 0, "zero"));
      Asm.emit a Ret;
      Asm.label a "zero";
      Asm.emit a Ret);
  let image = Asm.link a in
  let vm = Vm.create image in
  let run arg =
    Vm.start_call vm 0 (Asm.entry image "f") [ arg ];
    let rec go n =
      if n = 0 then failwith "budget";
      if List.exists (function Vm.Eret_to_user -> true | _ -> false) (Vm.step vm 0)
      then ()
      else go (n - 1)
    in
    go 100
  in
  Vm.reset_coverage vm;
  run 0;
  let c1 = Vm.coverage_size vm in
  run 0;
  let c2 = Vm.coverage_size vm in
  run 1;
  let c3 = Vm.coverage_size vm in
  checkb "first run covers something" true (c1 > 0);
  checki "same path adds nothing" c1 c2;
  checkb "new branch adds an edge" true (c3 > c2)

let test_step_counts () =
  let vm, _ = run_fn (fun a -> emit a [ Li (r0, 1); Li (r1, 2); Ret ]) in
  checkb "steps counted" true (Vm.steps vm >= 3)

let tests =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero;
    Alcotest.test_case "load/store sizes" `Quick test_load_store_sizes;
    Alcotest.test_case "store truncation" `Quick test_store_truncates;
    Alcotest.test_case "cas and faa" `Quick test_cas;
    Alcotest.test_case "branches" `Quick test_branches;
    Alcotest.test_case "call/ret stack" `Quick test_call_ret_stack;
    Alcotest.test_case "null fault" `Quick test_null_fault;
    Alcotest.test_case "unmapped fault" `Quick test_unmapped_fault;
    Alcotest.test_case "user memory isolation" `Quick test_user_memory_isolated;
    Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
    Alcotest.test_case "data init and regions" `Quick test_data_init_and_regions;
    Alcotest.test_case "function pointer table" `Quick test_funcptr_table;
    Alcotest.test_case "undefined label" `Quick test_undefined_label;
    Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
    Alcotest.test_case "pc to function map" `Quick test_func_name_map;
    Alcotest.test_case "pc map is total over padding" `Quick
      test_func_name_padding;
    Alcotest.test_case "console formatting" `Quick test_console_format;
    Alcotest.test_case "coverage edges" `Quick test_coverage_edges;
    Alcotest.test_case "step counter" `Quick test_step_counts;
  ]

let () = Alcotest.run "vmm" [ ("vm", tests); ("layout", Test_vmm_layout.tests) ]
