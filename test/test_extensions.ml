(* Tests for the section 6 extensions: record/replay of interleavings,
   post-mortem race diagnosis, N-thread execution, PMC chains and the
   three-thread relay order violation. *)

module Abi = Kernel.Abi
module P = Fuzzer.Prog
module Exec = Sched.Exec

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let env = lazy (Exec.make_env Kernel.Config.all_buggy)

let relay op = { P.nr = Abi.sys_relay; args = [ P.Const op ] }

let producer : P.t = [ relay 1 ]
let forwarder : P.t = [ relay 2 ]
let consumer : P.t = [ relay 3 ]

(* ---------------- record / replay ---------------- *)

let test_replay_roundtrip () =
  let e = Lazy.force env in
  let s = List.nth Harness.Scenarios.all 11 (* #12 l2tp *) in
  let writer = s.Harness.Scenarios.writer and reader = s.Harness.Scenarios.reader in
  let rng = Random.State.make [| 77 |] in
  let st = Sched.Policies.snowboard_state None in
  let rec_ = Sched.Replay.record (Sched.Policies.snowboard rng st) in
  let r1 = Exec.run_conc e ~writer ~reader ~policy:rec_.Sched.Replay.policy () in
  let trace = rec_.Sched.Replay.finish () in
  checkb "trace non-empty" true (Sched.Replay.length trace > 0);
  let r2 = Exec.run_conc e ~writer ~reader ~policy:(Sched.Replay.replay trace) () in
  checkb "replay: same step count" true (r1.Exec.cc_steps = r2.Exec.cc_steps);
  checkb "replay: same switches" true (r1.Exec.cc_switches = r2.Exec.cc_switches);
  checkb "replay: same accesses" true (r1.Exec.cc_accesses = r2.Exec.cc_accesses);
  checkb "replay: same console" true (r1.Exec.cc_console = r2.Exec.cc_console)

let test_replay_serialisation () =
  let t = { Sched.Replay.t_first = 1; t_decisions = [| true; false; true |] } in
  (match Sched.Replay.of_string (Sched.Replay.to_string t) with
  | Some t' ->
      checkb "roundtrip" true (t' = t);
      checki "switch count" 2 (Sched.Replay.num_switches t')
  | None -> Alcotest.fail "serialisation roundtrip failed");
  checkb "garbage rejected" true (Sched.Replay.of_string "nonsense" = None);
  checkb "bad body rejected" true (Sched.Replay.of_string "1:01x" = None)

let test_replay_reproduces_bug () =
  (* find a bug-triggering interleaving, then replay it and get the same
     console line - the paper's deterministic reproduction claim *)
  let e = Lazy.force env in
  let s = List.nth Harness.Scenarios.all 0 (* #1 rhashtable *) in
  let _, hints = Harness.Scenarios.identify e s in
  let found = ref None in
  List.iter
    (fun hint ->
      for seed = 1 to 100 do
        if !found = None then begin
          let rng = Random.State.make [| seed |] in
          let st = Sched.Policies.snowboard_state (Some hint) in
          let rec_ = Sched.Replay.record (Sched.Policies.snowboard rng st) in
          let r =
            Exec.run_conc e ~writer:s.Harness.Scenarios.writer
              ~reader:s.Harness.Scenarios.reader
              ~policy:rec_.Sched.Replay.policy ()
          in
          if r.Exec.cc_panicked then
            found := Some (rec_.Sched.Replay.finish (), r)
        end
      done)
    hints;
  match !found with
  | None -> Alcotest.fail "bug not found within the recorded-trial budget"
  | Some (trace, orig) ->
      let r =
        Exec.run_conc e ~writer:s.Harness.Scenarios.writer
          ~reader:s.Harness.Scenarios.reader
          ~policy:(Sched.Replay.replay trace) ()
      in
      checkb "replayed panic" true r.Exec.cc_panicked;
      checkb "same console" true (r.Exec.cc_console = orig.Exec.cc_console)

(* ---------------- post-mortem ---------------- *)

let test_postmortem () =
  let e = Lazy.force env in
  let s = List.nth Harness.Scenarios.all 13 (* #14 tty *) in
  let ident, _ = Harness.Scenarios.identify e s in
  (* run dense random trials until tty races are among the reports; a
     write-write race on the flags word and the write-read race both map
     to #14, but only the write-read pair is a PMC verbatim *)
  let tty_races = ref [] in
  for seed = 1 to 50 do
    if !tty_races = [] then begin
      let race = Detectors.Race.create () in
      let observer =
        {
          Exec.default_observer with
          Exec.on_access = (fun a ~ctx -> Detectors.Race.on_access race a ~ctx);
        }
      in
      let rng = Random.State.make [| seed |] in
      let _ =
        Exec.run_conc e ~writer:s.Harness.Scenarios.writer
          ~reader:s.Harness.Scenarios.reader
          ~policy:(Sched.Policies.naive rng ~period:2)
          ~observer ()
      in
      tty_races :=
        List.filter
          (fun r -> Detectors.Oracle.issue_of_race r = Some 14)
          (Detectors.Race.reports race)
    end
  done;
  match !tty_races with
  | [] -> Alcotest.fail "tty race not among reports"
  | races ->
      let ds =
        List.map
          (fun r ->
            Detectors.Postmortem.diagnose ~image:e.Exec.kern.Kernel.image ~ident r)
          races
      in
      List.iter
        (fun d ->
          checkb "region named" true
            (d.Detectors.Postmortem.region = Some "uart_port");
          checkb "issue triaged" true (d.Detectors.Postmortem.issue = Some 14))
        ds;
      checkb "some report predicted by a PMC" true
        (List.exists (fun d -> d.Detectors.Postmortem.predicted) ds);
      let s = Format.asprintf "%a" Detectors.Postmortem.pp (List.hd ds) in
      checkb "report mentions the object" true
        (Testutil.Astring_contains.contains s "uart_port")

(* ---------------- N-thread execution ---------------- *)

let test_run_multi_three () =
  let e = Lazy.force env in
  (* switches after *every* instruction, including event-free ones, so
     it must keep the per-instruction loop *)
  let policy =
    {
      Exec.first = 0;
      decide = (fun _ _ -> true);
      event_only = false;
      on_plain = ignore;
    }
  in
  let progs =
    [|
      [ { P.nr = Abi.sys_msgget; args = [ P.Const 1 ] } ];
      [ { P.nr = Abi.sys_msgget; args = [ P.Const 2 ] } ];
      [ { P.nr = Abi.sys_msgget; args = [ P.Const 3 ] } ];
    |]
  in
  let res = Exec.run_multi e ~progs ~policy () in
  checkb "no deadlock" false res.Exec.cc_deadlocked;
  let ids = Array.to_list (Array.map (fun rv -> rv.(0)) res.Exec.cc_retvals) in
  checkb "three distinct msq ids" true
    (List.sort_uniq compare ids = List.sort compare ids);
  checkb "all threads traced" true
    (Array.for_all (fun l -> l <> []) res.Exec.cc_accesses)

let test_run_multi_bounds () =
  let e = Lazy.force env in
  let policy =
    {
      Exec.first = 0;
      decide = (fun _ _ -> false);
      event_only = true;
      on_plain = ignore;
    }
  in
  Alcotest.check_raises "too many threads"
    (Invalid_argument "exec: unsupported thread count") (fun () ->
      ignore
        (Exec.run_multi e
           ~progs:(Array.make (Vmm.Layout.max_threads + 1) producer)
           ~policy ()))

let test_race_detector_three_threads () =
  (* a write by t0 races with reads by both t1 and t2 *)
  let d = Detectors.Race.create ~nthreads:3 () in
  let acc ~t ~pc kind =
    {
      Vmm.Trace.thread = t;
      pc;
      addr = 0x200;
      size = 8;
      kind;
      value = 1;
      atomic = false;
      sp = Vmm.Layout.stack_top t - 64;
    }
  in
  Detectors.Race.on_access d (acc ~t:0 ~pc:1 Vmm.Trace.Write) ~ctx:"w";
  Detectors.Race.on_access d (acc ~t:1 ~pc:2 Vmm.Trace.Read) ~ctx:"r1";
  Detectors.Race.on_access d (acc ~t:2 ~pc:3 Vmm.Trace.Read) ~ctx:"r2";
  checki "both reader races reported" 2 (Detectors.Race.num_reports d)

(* ---------------- relay semantics + chains ---------------- *)

let test_relay_sequential () =
  let e = Lazy.force env in
  let r =
    Exec.run_seq e ~tid:0 [ relay 1; relay 2; relay 3; relay 0 ]
  in
  checkb "no panic" false r.Exec.sq_panicked;
  checki "forward found a message" 1 r.Exec.sq_retvals.(1);
  checkb "consume read a payload byte" true (r.Exec.sq_retvals.(2) > 0);
  checki "bad op" Abi.einval r.Exec.sq_retvals.(3)

let test_chain_identification () =
  let e = Lazy.force env in
  let profiles =
    List.mapi
      (fun i p ->
        Core.Profile.of_accesses ~test_id:i
          (Exec.run_seq e ~tid:0 p).Exec.sq_accesses)
      [ producer; forwarder; consumer ]
  in
  let ident = Core.Identify.run profiles in
  let chains = Core.Chain.find ident in
  checkb "a chain exists" true (chains <> []);
  List.iter
    (fun (ch : Core.Chain.t) ->
      let a, b, c = ch.Core.Chain.tests in
      checkb "tests distinct" true (a <> b && b <> c && a <> c))
    chains;
  (* the relay chain: producer(0) -> forwarder(1) -> consumer(2) *)
  checkb "relay chain found" true
    (List.exists (fun ch -> ch.Core.Chain.tests = (0, 1, 2)) chains)

let test_two_threads_cannot_crash_relay () =
  let e = Lazy.force env in
  List.iter
    (fun (w, r) ->
      let res =
        Sched.Explore.run e ~ident:None ~writer:w ~reader:r ~hint:None
          ~kind:(Sched.Explore.Naive 2) ~trials:64 ~seed:5 ~stop_on_bug:false ()
      in
      checkb "two-thread relay clean" true
        (not (List.mem 18 (Sched.Explore.issues_found res))))
    [ (producer, forwarder); (producer, consumer); (forwarder, consumer) ]

let test_three_threads_crash_relay () =
  let e = Lazy.force env in
  let profiles =
    List.mapi
      (fun i p ->
        Core.Profile.of_accesses ~test_id:i
          (Exec.run_seq e ~tid:0 p).Exec.sq_accesses)
      [ producer; forwarder; consumer ]
  in
  let ident = Core.Identify.run profiles in
  let chains = Core.Chain.find ident in
  let found = ref false in
  List.iteri
    (fun i chain ->
      if not !found then
        let res =
          Sched.Explore3.run e
            ~progs:[| producer; forwarder; consumer |]
            ~chain:(Some chain) ~trials:64 ~seed:(100 + i) ~stop_on_bug:true ()
        in
        if List.mem 18 (Sched.Explore3.issues_found res) then found := true)
    chains;
  checkb "three-thread crash found via chain hints" true !found

let test_three_threads_need_the_chain_hints () =
  (* without chain hints the Algorithm 2 policy has no switch points, so
     threads serialise and the window never opens: the hints do the work *)
  let e = Lazy.force env in
  let res =
    Sched.Explore3.run e
      ~progs:[| producer; forwarder; consumer |]
      ~chain:None ~trials:64 ~seed:77 ~stop_on_bug:true ()
  in
  checkb "hint-free three-thread run stays silent" true
    (not (List.mem 18 (Sched.Explore3.issues_found res)))

let test_relay_fixed_clean () =
  let e = Exec.make_env Kernel.Config.all_fixed in
  let res =
    Sched.Explore3.run e
      ~progs:[| producer; forwarder; consumer |]
      ~chain:None ~trials:32 ~seed:9 ~stop_on_bug:false ()
  in
  checkb "fixed relay silent" true (Sched.Explore3.issues_found res = [])

let tests =
  [
    Alcotest.test_case "replay roundtrip" `Quick test_replay_roundtrip;
    Alcotest.test_case "replay serialisation" `Quick test_replay_serialisation;
    Alcotest.test_case "replay reproduces a bug" `Slow test_replay_reproduces_bug;
    Alcotest.test_case "postmortem diagnosis" `Quick test_postmortem;
    Alcotest.test_case "run_multi three threads" `Quick test_run_multi_three;
    Alcotest.test_case "run_multi bounds" `Quick test_run_multi_bounds;
    Alcotest.test_case "race detector three threads" `Quick
      test_race_detector_three_threads;
    Alcotest.test_case "relay sequential" `Quick test_relay_sequential;
    Alcotest.test_case "chain identification" `Quick test_chain_identification;
    Alcotest.test_case "two threads cannot crash relay" `Slow
      test_two_threads_cannot_crash_relay;
    Alcotest.test_case "three threads crash relay" `Slow
      test_three_threads_crash_relay;
    Alcotest.test_case "three threads need the hints" `Quick
      test_three_threads_need_the_chain_hints;
    Alcotest.test_case "fixed relay clean" `Quick test_relay_fixed_clean;
  ]

let () = Alcotest.run "extensions" [ ("section6", tests) ]
