(* Tests for the performance layer: page-granular dirty tracking in the
   VM (restore must stay observationally identical to the old full-copy
   restore), O(1) corpus indexing, and the determinism of the
   domain-parallel prepare phase. *)

module Vm = Vmm.Vm
module P = Fuzzer.Prog
module Exec = Sched.Exec

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ---------------- dirty-page restore vs full-copy restore ---------- *)

(* Two identically booted environments: [env_dirty] restores through the
   dirty-page shortcut, [env_full] has tracking disabled so every restore
   blits the whole guest image (the pre-optimisation behaviour).  Both
   run the same arbitrary programs; every observable - the sequential
   result, the console, the coverage edges and a fingerprint of the full
   VM state - must stay equal, including across the restore that starts
   each run. *)
let envs =
  lazy
    (let a = Exec.make_env Kernel.Config.v5_12_rc3 in
     let b = Exec.make_env Kernel.Config.v5_12_rc3 in
     Vm.set_dirty_tracking a.Exec.vm true;
     Vm.set_dirty_tracking b.Exec.vm false;
     (a, b))

let prop_dirty_restore_equivalent =
  QCheck.Test.make ~name:"dirty-page restore is observationally identical"
    ~count:80
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let env_dirty, env_full = Lazy.force envs in
      let prog = Fuzzer.Gen.generate (Random.State.make [| seed |]) in
      let r1 = Exec.run_seq env_dirty ~tid:0 prog in
      let r2 = Exec.run_seq env_full ~tid:0 prog in
      r1 = r2
      && Vm.fingerprint env_dirty.Exec.vm = Vm.fingerprint env_full.Exec.vm)

(* After any program, a dirty-tracked restore must bring the VM back to
   the exact booted state (same fingerprint as a full-copy restore of the
   same snapshot). *)
let prop_restore_resets_state =
  QCheck.Test.make ~name:"restore returns the VM to the snapshot state"
    ~count:40
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let env_dirty, env_full = Lazy.force envs in
      let prog = Fuzzer.Gen.generate (Random.State.make [| seed |]) in
      ignore (Exec.run_seq env_dirty ~tid:0 prog);
      ignore (Exec.run_seq env_full ~tid:0 prog);
      Vm.restore env_dirty.Exec.vm env_dirty.Exec.snap;
      Vm.restore_full env_full.Exec.vm env_full.Exec.snap;
      Vm.fingerprint env_dirty.Exec.vm = Vm.fingerprint env_full.Exec.vm)

let test_dirty_page_counts () =
  let env = Exec.make_env Kernel.Config.v5_12_rc3 in
  Vm.set_dirty_tracking env.Exec.vm true;
  (* a restore synchronizes the VM with the snapshot: nothing dirty *)
  Vm.restore env.Exec.vm env.Exec.snap;
  checki "clean after restore" 0 (Vm.dirty_page_count env.Exec.vm);
  let prog =
    [ { P.nr = Kernel.Abi.sys_socket; args = [ P.Const 1; P.Const 0 ] } ]
  in
  ignore (Exec.run_seq env ~tid:0 prog);
  let d = Vm.dirty_page_count env.Exec.vm in
  checkb "a short test dirties some pages" true (d > 0);
  checkb "...but far from the whole guest image" true (d < Vm.num_pages / 2);
  Vm.restore env.Exec.vm env.Exec.snap;
  checki "clean again after restore" 0 (Vm.dirty_page_count env.Exec.vm)

(* ---------------- O(1) corpus indexing ------------------------------ *)

let mk_corpus n =
  let c = Fuzzer.Corpus.create () in
  for i = 0 to n - 1 do
    let prog = [ { P.nr = i; args = [ P.Const i ] } ] in
    (* a unique fake edge per program so every offer is kept *)
    match Fuzzer.Corpus.consider c prog ~edges:[ (i, i + 1) ] with
    | Some id -> checki "dense ids" i id
    | None -> Alcotest.fail "corpus rejected a coverage-novel program"
  done;
  c

let test_corpus_nth_find () =
  let n = 100 in
  let c = mk_corpus n in
  checki "size" n (Fuzzer.Corpus.size c);
  List.iteri
    (fun i (e : Fuzzer.Corpus.entry) ->
      let e' = Fuzzer.Corpus.nth c i in
      checki "nth agrees with to_list" e.Fuzzer.Corpus.id e'.Fuzzer.Corpus.id;
      match Fuzzer.Corpus.find c e.Fuzzer.Corpus.id with
      | Some f -> checkb "find returns the entry" true (f = e)
      | None -> Alcotest.fail "find lost an id")
    (Fuzzer.Corpus.to_list c);
  checkb "find out of range" true (Fuzzer.Corpus.find c n = None);
  checkb "find negative" true (Fuzzer.Corpus.find c (-1) = None);
  Alcotest.check_raises "nth out of range"
    (Invalid_argument (Printf.sprintf "corpus: nth %d of %d" n n)) (fun () ->
      ignore (Fuzzer.Corpus.nth c n))

(* [sample] must spend exactly the RNG draw the old [List.nth] pick
   spent, so corpora and campaigns stay bit-identical. *)
let test_corpus_sample_draw () =
  let c = mk_corpus 37 in
  let r1 = Random.State.make [| 5 |] in
  let r2 = Random.State.make [| 5 |] in
  for _ = 1 to 200 do
    let e = Fuzzer.Corpus.sample c r1 in
    let e' = List.nth (Fuzzer.Corpus.to_list c) (Random.State.int r2 37) in
    checki "sample = nth of one draw" e'.Fuzzer.Corpus.id e.Fuzzer.Corpus.id
  done;
  (* both states consumed the same number of draws *)
  checki "rng states in lockstep" (Random.State.int r2 1000)
    (Random.State.int r1 1000)

(* ---------------- parallel prepare determinism ---------------------- *)

let cfg_with_jobs jobs =
  {
    Harness.Pipeline.default with
    Harness.Pipeline.fuzz_iters = 150;
    trials_per_test = 6;
    seed_corpus = Harness.Pipeline.scenario_seeds ();
    jobs;
  }

(* The whole observable output of a prepared-and-executed campaign slice,
   as one string: profiles, identification and the JSON summary. *)
let campaign_digest jobs =
  let t = Harness.Pipeline.prepare (cfg_with_jobs jobs) in
  let stats =
    [
      Harness.Pipeline.run_method t
        (Core.Select.Strategy Core.Cluster.S_INS_PAIR)
        ~budget:12;
    ]
  in
  let found = [ ("campaign", Harness.Pipeline.issues_union stats) ] in
  let summary =
    Obs.Export.to_string (Harness.Report.json_summary ~pipeline:t ~stats ~found ())
  in
  (t.Harness.Pipeline.profiles, Core.Identify.num_pmcs t.Harness.Pipeline.ident,
   summary)

let test_jobs_determinism () =
  let p1, n1, s1 = campaign_digest 1 in
  List.iter
    (fun jobs ->
      let p, n, s = campaign_digest jobs in
      checkb
        (Printf.sprintf "profiles identical at jobs=%d" jobs)
        true (p = p1);
      checki (Printf.sprintf "same PMC count at jobs=%d" jobs) n1 n;
      checks (Printf.sprintf "byte-identical summary at jobs=%d" jobs) s1 s)
    [ 2; 4 ]

(* profile_corpus_parallel against profile_corpus directly, including the
   guest-step accounting *)
let test_parallel_profile_equal () =
  let cfg = cfg_with_jobs 1 in
  let env = Exec.make_env cfg.Harness.Pipeline.kernel in
  let corpus, _ =
    Harness.Pipeline.fuzz ~seeds:cfg.Harness.Pipeline.seed_corpus env
      ~seed:cfg.Harness.Pipeline.seed ~iters:cfg.Harness.Pipeline.fuzz_iters
  in
  let seq_profiles, seq_steps = Harness.Pipeline.profile_corpus env corpus in
  List.iter
    (fun jobs ->
      let par_profiles, par_steps =
        Harness.Pipeline.profile_corpus_parallel ~jobs
          ~kernel:cfg.Harness.Pipeline.kernel corpus
      in
      checkb
        (Printf.sprintf "profiles equal at jobs=%d" jobs)
        true (par_profiles = seq_profiles);
      checki (Printf.sprintf "steps equal at jobs=%d" jobs) seq_steps par_steps)
    [ 2; 3 ]

let test_shard_partition () =
  let items = List.init 23 Fun.id in
  List.iter
    (fun n ->
      let shards = Harness.Pipeline.shard n items in
      checki "shard count" n (Array.length shards);
      let merged = List.sort compare (List.concat (Array.to_list shards)) in
      checkb (Printf.sprintf "shard %d partitions" n) true (merged = items))
    [ 1; 2; 4; 7; 23; 40 ]

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_dirty_restore_equivalent; prop_restore_resets_state ]

let tests =
  [
    Alcotest.test_case "dirty page counts" `Quick test_dirty_page_counts;
    Alcotest.test_case "corpus nth and find" `Quick test_corpus_nth_find;
    Alcotest.test_case "corpus sample draw" `Quick test_corpus_sample_draw;
    Alcotest.test_case "shard partitions" `Quick test_shard_partition;
    Alcotest.test_case "parallel profile equal" `Quick
      test_parallel_profile_equal;
    Alcotest.test_case "jobs determinism" `Slow test_jobs_determinism;
  ]

let () = Alcotest.run "perf" [ ("perf", qtests @ tests) ]
