(* Tests for the interleaving flight recorder: the ring buffer itself
   (lib/obs/event.ml), the Chrome-trace and interleaving exporters
   (lib/obs/timeline.ml), and the end-to-end story - a seeded buggy run
   records a replay trace whose re-execution reproduces the same
   verdict and yields a byte-stable deterministic event trace. *)

module E = Obs.Event
module J = Obs.Export
module Exec = Sched.Exec
module Explore = Sched.Explore
module Replay = Sched.Replay
module Scenarios = Harness.Scenarios

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let off () = E.configure ~enabled:false ()

(* ---------------- ring buffer ---------------- *)

let note i = E.Note { name = "n"; detail = string_of_int i }

let test_ring_wraparound () =
  E.configure ~capacity:8 ~enabled:true ();
  for i = 0 to 19 do
    E.emit ~tid:0 (note i)
  done;
  let evs = E.events () in
  checki "ring keeps capacity events" 8 (List.length evs);
  checki "seen counts everything" 20 (E.seen ());
  checki "dropped = seen - kept" 12 (E.dropped ());
  (* the newest events survive, oldest first *)
  let details =
    List.map
      (fun (ev : E.t) ->
        match ev.E.kind with E.Note { detail; _ } -> detail | _ -> "?")
      evs
  in
  checkb "newest events kept in order" true
    (details = List.init 8 (fun i -> string_of_int (12 + i)));
  checki "seq of oldest survivor" 12 (List.hd evs).E.seq;
  off ()

let test_disabled_noop () =
  E.configure ~enabled:false ();
  for i = 0 to 9 do
    E.emit ~tid:0 (note i)
  done;
  checkb "disabled recorder buffers nothing" true (E.events () = []);
  checki "disabled recorder counts nothing" 0 (E.seen ());
  checki "nothing dropped" 0 (E.dropped ())

let test_reset_keeps_config () =
  E.configure ~capacity:4 ~enabled:true ();
  E.emit ~tid:0 (note 0);
  E.reset ();
  checki "reset clears the buffer" 0 (List.length (E.events ()));
  checki "reset clears seen" 0 (E.seen ());
  E.emit ~tid:0 (note 1);
  checki "recorder usable after reset" 1 (List.length (E.events ()));
  off ()

let test_virtual_clock_stamps () =
  E.configure ~enabled:true ();
  let t = ref 100 in
  E.set_clock (Some (fun () -> !t));
  E.emit ~tid:0 (note 0);
  t := 250;
  E.emit ~tid:1 (note 1);
  E.set_clock None;
  (match E.events () with
  | [ a; b ] ->
      checki "first stamp" 100 a.E.vclock;
      checki "second stamp" 250 b.E.vclock;
      checki "deterministic mode has no wall clock" 0 a.E.wall_us
  | l -> Alcotest.failf "expected 2 events, got %d" (List.length l));
  off ()

(* ---------------- exporters on a synthetic trace ---------------- *)

let synthetic_events =
  let mk seq vclock tid kind = { E.seq; vclock; wall_us = 0; tid; kind } in
  [
    mk 0 1000 E.sched_tid (E.Trial_begin { threads = 2; first = 0 });
    mk 1 1001 0 (E.Syscall_enter { index = 0; nr = 7 });
    mk 2 1005 0
      (E.Access
         { pc = 12; addr = 0x2000; size = 8; write = true; value = 1; ctx = "f" });
    mk 3 1005 0 (E.Hint_hit { write = true; pc = 12; addr = 0x2000 });
    mk 4 1006 E.sched_tid (E.Switch { from_ = 0; to_ = 1; reason = "policy" });
    mk 5 1009 1 (E.Hint_hit { write = false; pc = 44; addr = 0x2000 });
    mk 6 1012 1 (E.Syscall_exit { index = 0; ret = -1 });
    mk 7 1020 E.sched_tid
      (E.Verdict { kind = "data-race"; issue = Some 13; detail = "f / g" });
    mk 8 1021 E.sched_tid (E.Trial_end { verdict = "ok" });
  ]

let test_chrome_roundtrip () =
  E.configure ~enabled:true ();
  let doc = Obs.Timeline.chrome_json synthetic_events in
  let reparsed = J.of_string (J.to_string doc) in
  checkb "chrome trace round-trips through Export.of_string" true
    (reparsed = doc);
  (match doc with
  | J.Obj fields ->
      checkb "schema tagged" true
        (List.assoc_opt "schema" fields = Some (J.String "snowboard-trace/1"));
      (match List.assoc_opt "traceEvents" fields with
      | Some (J.List l) ->
          (* two thread_name metadata records (scheduler + vCPU 0/1) plus
             one record per event *)
          checki "metadata + events"
            (3 + List.length synthetic_events)
            (List.length l)
      | _ -> Alcotest.fail "no traceEvents list")
  | _ -> Alcotest.fail "chrome_json is not an object");
  off ()

let test_chrome_rebased_timestamps () =
  E.configure ~enabled:true ();
  let doc = Obs.Timeline.chrome_json synthetic_events in
  let ts =
    match doc with
    | J.Obj fields -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (J.List l) ->
            List.filter_map
              (function
                | J.Obj f -> (
                    match List.assoc_opt "ts" f with
                    | Some (J.Int t) -> Some t
                    | _ -> None)
                | _ -> None)
              l
        | _ -> [])
    | _ -> []
  in
  checkb "timestamps rebased to trial start" true (List.mem 0 ts);
  checkb "all timestamps non-negative" true (List.for_all (fun t -> t >= 0) ts);
  off ()

let test_interleaving_report () =
  E.configure ~enabled:true ();
  let s = Obs.Timeline.interleaving synthetic_events in
  let has needle = Testutil.Astring_contains.contains s needle in
  checkb "column headers" true (has "vCPU 0" && has "vCPU 1");
  checkb "trial lines rendered" true
    (has "trial begins: 2 threads" && has "trial ends: ok");
  checkb "switch rendered full-width" true (has "switch vCPU 0 -> vCPU 1");
  checkb "PMC write->read edge drawn" true (has "PMC write -> read edge (0x2000)");
  checkb "verdict rendered" true (has "VERDICT data-race (issue #13)");
  off ()

(* ---------------- end to end on a seeded buggy run ---------------- *)

let env = lazy (Exec.make_env Kernel.Config.all_buggy)

(* A buggy trial for issue #1 (msgget id race): explore the scenario
   under Snowboard hints until the issue fires, and keep the trial's
   recorded replay trace. *)
let buggy =
  lazy
    (let e = Lazy.force env in
     let s = Option.get (Scenarios.find 1) in
     let _, hints = Scenarios.identify e s in
     let rec hunt seed = function
       | [] -> Alcotest.fail "issue #1 did not reproduce (seed exhausted?)"
       | hint :: rest -> (
           let r =
             Explore.run e ~ident:None ~writer:s.Scenarios.writer
               ~reader:s.Scenarios.reader ~hint:(Some hint)
               ~kind:Explore.Snowboard ~trials:64 ~seed ~stop_on_bug:true
               ~target_issue:(Some 1) ()
           in
           match
             List.find_opt
               (fun (t : Explore.trial) -> List.mem 1 t.Explore.issues)
               r.Explore.trials
           with
           | Some t -> (s, t)
           | None -> hunt seed rest)
     in
     hunt 1001 hints)

(* Re-execute a replay trace with the recorder on; returns the verdict
   issues and the captured events. *)
let replay_with_recorder e (s : Scenarios.scenario) trace =
  E.configure ~deterministic:true ~enabled:true ();
  let race = Detectors.Race.create () in
  let observer =
    {
      Exec.default_observer with
      Exec.on_access = (fun a ~ctx -> Detectors.Race.on_access race a ~ctx);
    }
  in
  let res =
    Exec.run_conc e ~writer:s.Scenarios.writer ~reader:s.Scenarios.reader
      ~policy:(Replay.replay trace) ~observer ()
  in
  let findings =
    Detectors.Oracle.analyze ~console:res.Exec.cc_console
      ~races:(Detectors.Race.reports race)
      ~deadlocked:res.Exec.cc_deadlocked
  in
  let events = E.events () in
  off ();
  (Detectors.Oracle.issues findings, events)

let test_replay_reproduces_verdict () =
  let e = Lazy.force env in
  let s, trial = Lazy.force buggy in
  (* through the serialised form, as `snowboard explain` consumes it *)
  let trace =
    Option.get (Replay.of_string (Replay.to_string trial.Explore.replay))
  in
  let issues, events = replay_with_recorder e s trace in
  checkb "stored verdict reproduces" true (List.mem 1 issues);
  checkb "events were recorded" true (events <> []);
  checkb "a verdict event is in the trace" true
    (List.exists
       (fun (ev : E.t) ->
         match ev.E.kind with E.Verdict { issue; _ } -> issue = Some 1 | _ -> false)
       events);
  checkb "trial bracketed by begin/end" true
    (match (events, List.rev events) with
    | first :: _, last :: _ -> (
        (match first.E.kind with E.Trial_begin _ -> true | _ -> false)
        &&
        match last.E.kind with
        | E.Verdict _ | E.Trial_end _ -> true
        | _ -> false)
    | _ -> false)

let test_deterministic_trace_is_byte_stable () =
  let e = Lazy.force env in
  let s, trial = Lazy.force buggy in
  let render () =
    let _, events = replay_with_recorder e s trial.Explore.replay in
    E.configure ~deterministic:true ~enabled:true ();
    let chrome = J.to_string (Obs.Timeline.chrome_json events) in
    let text = Obs.Timeline.interleaving events in
    off ();
    (chrome, text)
  in
  let c1, t1 = render () in
  let c2, t2 = render () in
  checks "chrome trace byte-stable" c1 c2;
  checks "interleaving report byte-stable" t1 t2;
  checkb "chrome trace parses" true (J.of_string_opt c1 <> None)

let test_exploration_records_hint_events () =
  let e = Lazy.force env in
  let s, trial = Lazy.force buggy in
  let _, events = replay_with_recorder e s trial.Explore.replay in
  checkb "syscall events recorded" true
    (List.exists
       (fun (ev : E.t) ->
         match ev.E.kind with E.Syscall_enter _ -> true | _ -> false)
       events);
  checkb "shared accesses recorded with contexts" true
    (List.exists
       (fun (ev : E.t) ->
         match ev.E.kind with E.Access { ctx; _ } -> ctx <> "" | _ -> false)
       events);
  checkb "vclock is non-decreasing" true
    (let rec mono = function
       | (a : E.t) :: (b : E.t) :: rest ->
           a.E.vclock <= b.E.vclock && mono (b :: rest)
       | _ -> true
     in
     mono events)

let test_bug_report_carries_replay () =
  let e = Lazy.force env in
  let s, _ = Lazy.force buggy in
  let _, hints = Scenarios.identify e s in
  let r =
    Explore.run e ~ident:None ~writer:s.Scenarios.writer
      ~reader:s.Scenarios.reader
      ~hint:(Some (List.hd hints))
      ~kind:Explore.Snowboard ~trials:8 ~seed:1001 ~stop_on_bug:false ()
  in
  (* every trial carries a replay trace, buggy or not *)
  checkb "every trial records decisions" true
    (List.for_all
       (fun (t : Explore.trial) -> Replay.length t.Explore.replay >= 0)
       r.Explore.trials);
  match
    Harness.Pipeline.bug_of_result ~test_idx:1 ~writer:s.Scenarios.writer
      ~reader:s.Scenarios.reader r
  with
  | None -> ()  (* nothing fired in 8 trials: nothing to check *)
  | Some b ->
      checkb "bug report replay parses" true
        (Replay.of_string b.Harness.Pipeline.br_replay <> None);
      let j = Harness.Report.json_of_bug b in
      let s' = J.to_string j in
      checkb "bug JSON round-trips" true (J.of_string s' = j)

let () =
  Alcotest.run "flight"
    [
      ( "ring",
        [
          Alcotest.test_case "wraparound keeps newest" `Quick
            test_ring_wraparound;
          Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
          Alcotest.test_case "reset keeps config" `Quick test_reset_keeps_config;
          Alcotest.test_case "virtual clock stamps" `Quick
            test_virtual_clock_stamps;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace round-trips" `Quick
            test_chrome_roundtrip;
          Alcotest.test_case "timestamps rebased" `Quick
            test_chrome_rebased_timestamps;
          Alcotest.test_case "interleaving report" `Quick
            test_interleaving_report;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "replay reproduces verdict" `Slow
            test_replay_reproduces_verdict;
          Alcotest.test_case "deterministic trace byte-stable" `Slow
            test_deterministic_trace_is_byte_stable;
          Alcotest.test_case "recorder sees executor events" `Slow
            test_exploration_records_hint_events;
          Alcotest.test_case "bug report carries replay" `Slow
            test_bug_report_carries_replay;
        ] );
    ]
