(* PMC provenance and guest profiling.

   The flagship property: the provenance artifact and the collapsed-stack
   flamegraph are byte-identical between a sequential campaign, a
   parallel one (prepare --jobs 2 and execute --domains 2) and a
   checkpointed-then-resumed one, all on the same seed.  Around it, unit
   coverage for the profiler primitives, the hint-outcome bookkeeping and
   the artifact's internal consistency. *)

module Pipeline = Harness.Pipeline
module Parallel = Harness.Parallel
module Provenance = Harness.Provenance
module Frontier = Harness.Frontier
module Prof = Obs.Profguest
module J = Obs.Export

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ---------------- profiler primitives ---------------- *)

let test_profiler_gating () =
  Prof.reset ();
  Prof.set_enabled false;
  let c = Prof.collector () in
  checkb "collector inactive while disabled" false (Prof.active c);
  Prof.collect c ~fid:(Prof.intern "f") ~steps:10 ~shared:1;
  checkb "nothing collected" true (Prof.drain c = []);
  Prof.add_rows Prof.Profile [ ("f", 5, 1) ];
  checkb "add_rows is a no-op while disabled" true (Prof.rows () = []);
  Prof.set_enabled true;
  let c = Prof.collector () in
  checkb "collector active while enabled" true (Prof.active c);
  Prof.set_enabled false

let test_collector_drain_sorted () =
  Prof.reset ();
  Prof.set_enabled true;
  let c = Prof.collector () in
  let fb = Prof.intern "bbb" and fa = Prof.intern "aaa" in
  Prof.collect c ~fid:fb ~steps:3 ~shared:1;
  Prof.collect c ~fid:fa ~steps:2 ~shared:0;
  Prof.collect c ~fid:fb ~steps:4 ~shared:2;
  Prof.collect c ~fid:(-1) ~steps:99 ~shared:99;
  (* negative fid ignored *)
  checkb "rows sorted by name, counts summed" true
    (Prof.drain c = [ ("aaa", 2, 0); ("bbb", 7, 3) ]);
  checkb "drain clears" true (Prof.drain c = []);
  Prof.set_enabled false

let test_phase_split_and_flame_format () =
  Prof.reset ();
  Prof.set_enabled true;
  Prof.add_rows Prof.Profile [ ("tty_write", 10, 2) ];
  Prof.add_rows Prof.Explore [ ("tty_write", 30, 5); ("poll_wait", 7, 1) ];
  let rows = Prof.rows () in
  checki "two functions" 2 (List.length rows);
  (match List.find_opt (fun r -> r.Prof.r_name = "tty_write") rows with
  | Some r ->
      checki "profile instr" 10 r.Prof.r_profile_instr;
      checki "profile shared" 2 r.Prof.r_profile_shared;
      checki "explore instr" 30 r.Prof.r_explore_instr;
      checki "explore shared" 5 r.Prof.r_explore_shared
  | None -> Alcotest.fail "tty_write row missing");
  let lines = Prof.flame_lines () in
  checkb "collapsed-stack lines sorted" true
    (lines = List.sort compare lines);
  List.iter
    (fun l ->
      match String.index_opt l ';' with
      | None -> Alcotest.failf "flame line %S lacks phase prefix" l
      | Some i ->
          let phase = String.sub l 0 i in
          checkb "phase is profile or explore" true
            (phase = "profile" || phase = "explore"))
    lines;
  checkb "explore frame present" true
    (List.mem "explore;poll_wait 7" lines);
  Prof.set_enabled false

let test_reset_keeps_fids () =
  Prof.reset ();
  Prof.set_enabled true;
  let f = Prof.intern "stable_fn" in
  Prof.add_rows Prof.Profile [ ("stable_fn", 5, 0) ];
  Prof.reset ();
  checki "fid survives reset" f (Prof.intern "stable_fn");
  checkb "counts cleared" true (Prof.rows () = []);
  Prof.set_enabled false

(* ---------------- campaigns under comparison ---------------- *)

let m_sins = Core.Select.Strategy Core.Cluster.S_INS
let budget = 6

let cfg ~jobs =
  {
    Pipeline.default with
    Pipeline.seed = 7;
    fuzz_iters = 100;
    trials_per_test = 4;
    seed_corpus = Pipeline.scenario_seeds ();
    jobs;
  }

(* One complete profiled campaign (fresh pipeline, fresh profiler);
   returns the provenance artifact and flamegraph as strings, plus the
   executed results for journal-style resumption. *)
let campaign ?(jobs = 1) ~runner () =
  Prof.reset ();
  Prof.set_enabled true;
  let t = Pipeline.prepare (cfg ~jobs) in
  let collected = ref [] in
  let (_ : Pipeline.method_stats) =
    runner t (fun r -> collected := r :: !collected)
  in
  let prov =
    J.to_string (Provenance.json t.Pipeline.prov ~frontier:t.Pipeline.frontier)
  in
  let flame = String.concat "\n" (Prof.flame_lines ()) in
  Prof.set_enabled false;
  (prov, flame, List.rev !collected)

let sequential t on_result = Pipeline.run_method ~on_result t m_sins ~budget

let reference = lazy (campaign ~runner:sequential ())

let test_artifact_identical_jobs2_domains2 () =
  let prov1, flame1, _ = Lazy.force reference in
  let prov2, flame2, _ =
    campaign ~jobs:2
      ~runner:(fun t on_result ->
        Parallel.run_method ~domains:2 ~on_result t m_sins ~budget)
      ()
  in
  checks "provenance byte-identical across --jobs 2/--domains 2" prov1 prov2;
  checks "flamegraph byte-identical across --jobs 2/--domains 2" flame1 flame2

let resumed_campaign journal =
  campaign
    ~runner:(fun t on_result ->
      let resume idx =
        List.find_opt (fun r -> r.Pipeline.tr_index = idx) journal
      in
      Pipeline.run_method ~resume ~on_result t m_sins ~budget)
    ()

let prop_artifact_identical_resumed =
  QCheck.Test.make ~name:"provenance/flame byte-identical after resume"
    ~count:4
    QCheck.(int_range 0 budget)
    (fun k ->
      let prov1, flame1, results = Lazy.force reference in
      (* journal the first [k] executed tests, re-run the rest *)
      let journal = List.filteri (fun i _ -> i < k) results in
      let prov2, flame2, _ = resumed_campaign journal in
      prov1 = prov2 && flame1 = flame2)

(* ---------------- artifact consistency ---------------- *)

let jfield k = function J.Obj l -> List.assoc_opt k l | _ -> None
let jget k o = match jfield k o with Some v -> v | None -> J.Null
let jint = function J.Int i -> i | _ -> Alcotest.fail "expected int"
let jlist = function J.List l -> l | _ -> []
let jstr = function J.String s -> s | _ -> Alcotest.fail "expected string"

let artifact = lazy (let p, _, _ = Lazy.force reference in J.of_string p)

let test_artifact_schema_and_counts () =
  let doc = Lazy.force artifact in
  checks "schema" Provenance.schema (jstr (jget "schema" doc));
  let pmcs = jlist (jget "pmcs" doc) in
  checki "num_pmcs matches the pmcs list" (jint (jget "num_pmcs" doc))
    (List.length pmcs);
  checki "one cluster block per Table 1 strategy"
    (List.length Core.Cluster.all)
    (List.length (jlist (jget "clusters" doc)));
  List.iter
    (fun p ->
      checki "verdict per strategy" (List.length Core.Cluster.all)
        (List.length
           (match jget "verdicts" p with J.Obj l -> l | _ -> [])))
    pmcs

let known_verdicts =
  [ "selected"; "deduplicated"; "beyond-budget"; "filtered"; "method-not-run" ]

let test_verdict_vocabulary () =
  let doc = Lazy.force artifact in
  List.iter
    (fun p ->
      List.iter
        (fun (_, v) ->
          let v = jstr v in
          checkb ("known verdict: " ^ v) true (List.mem v known_verdicts))
        (match jget "verdicts" p with J.Obj l -> l | _ -> []))
    (jlist (jget "pmcs" doc));
  (* the S-INS campaign ran, so its verdicts must include selections and
     every other strategy must read method-not-run or filtered *)
  let any_verdict name v =
    List.exists
      (fun p ->
        match jget "verdicts" p with
        | J.Obj l -> List.assoc_opt name l = Some (J.String v)
        | _ -> false)
      (jlist (jget "pmcs" doc))
  in
  checkb "some PMC selected under S-INS" true (any_verdict "S-INS" "selected");
  checkb "S-FULL never ran" true (any_verdict "S-FULL" "method-not-run");
  checkb "no S-FULL selection" false (any_verdict "S-FULL" "selected")

let test_hint_tallies_consistent () =
  (* per hinted ok test: every trial is either a hit or a classified
     miss, so the four tallies partition the trial count *)
  let doc = Lazy.force artifact in
  let hinted_checked = ref 0 in
  List.iter
    (fun t ->
      if jget "pmc" t <> J.Null && jstr (jget "outcome" t) = "ok" then begin
        incr hinted_checked;
        checki "hits + classified misses = trials"
          (jint (jget "trials" t))
          (jint (jget "hint_hits" t)
          + jint (jget "miss_no_write" t)
          + jint (jget "miss_no_read" t)
          + jint (jget "miss_value" t))
      end)
    (jlist (jget "tests" doc));
  checkb "some hinted tests were checked" true (!hinted_checked > 0)

let test_untested_cluster_why () =
  let doc = Lazy.force artifact in
  let known = [ "planned-but-not-executed"; "beyond-budget"; "method-not-run" ] in
  List.iter
    (fun block ->
      List.iter
        (fun c ->
          match (jget "tested" c, jfield "why" c) with
          | J.Bool true, Some _ -> Alcotest.fail "tested cluster carries a why"
          | J.Bool true, None -> ()
          | J.Bool false, Some (J.String w) ->
              checkb ("known why: " ^ w) true (List.mem w known)
          | _ -> Alcotest.fail "untested cluster lacks a why")
        (jlist (jget "clusters" block)))
    (jlist (jget "clusters" doc))

let test_frontier_point_queries () =
  (* untested_keys + tested keys = member keys, and is_tested agrees *)
  let _, _, _ = Lazy.force reference in
  let t = Pipeline.prepare (cfg ~jobs:1) in
  let fr = t.Pipeline.frontier in
  let strategy = Core.Cluster.S_INS in
  let all_keys =
    Core.Cluster.run strategy t.Pipeline.ident
    |> Core.Cluster.ordered |> List.map fst
  in
  checkb "fresh frontier: everything untested" true
    (List.length (Frontier.untested_keys fr strategy) = List.length all_keys);
  let (_ : Pipeline.method_stats) = Pipeline.run_method t m_sins ~budget in
  let untested = Frontier.untested_keys fr strategy in
  checkb "campaign tested something" true
    (List.length untested < List.length all_keys);
  List.iter
    (fun k ->
      checkb "untested_keys and is_tested agree"
        (not (List.mem k untested))
        (Frontier.is_tested fr strategy k))
    all_keys

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "provenance"
    [
      ( "profiler",
        [
          Alcotest.test_case "disabled profiler is inert" `Quick
            test_profiler_gating;
          Alcotest.test_case "collector drains sorted, summed" `Quick
            test_collector_drain_sorted;
          Alcotest.test_case "phase split and flame format" `Quick
            test_phase_split_and_flame_format;
          Alcotest.test_case "reset keeps interned fids" `Quick
            test_reset_keeps_fids;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "artifacts identical under --jobs 2/--domains 2"
            `Slow test_artifact_identical_jobs2_domains2;
          qc prop_artifact_identical_resumed;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "schema and counts" `Slow
            test_artifact_schema_and_counts;
          Alcotest.test_case "verdict vocabulary" `Slow test_verdict_vocabulary;
          Alcotest.test_case "hint tallies partition trials" `Slow
            test_hint_tallies_consistent;
          Alcotest.test_case "untested clusters carry a why" `Slow
            test_untested_cluster_why;
          Alcotest.test_case "frontier point queries" `Slow
            test_frontier_point_queries;
        ] );
    ]
