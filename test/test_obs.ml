(* Unit tests for lib/obs: the metrics registry, phase spans and the
   JSON/table exporters, plus one integration check that the pipeline's
   instrumentation actually populates the registry. *)

let reset () =
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Span.reset ()

(* ---------------- counters and gauges ---------------- *)

let test_counter () =
  reset ();
  let c = Obs.Metrics.counter "test/c" in
  Alcotest.(check int) "fresh counter" 0 (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  Alcotest.(check int) "incr + add" 42 (Obs.Metrics.counter_value c);
  let c' = Obs.Metrics.counter "test/c" in
  Obs.Metrics.incr c';
  Alcotest.(check int) "re-registration returns the same handle" 43
    (Obs.Metrics.counter_value c)

let test_gauge () =
  reset ();
  let g = Obs.Metrics.gauge "test/g" in
  Obs.Metrics.set g 7;
  Obs.Metrics.set g 3;
  Alcotest.(check int) "gauge keeps the last value" 3 (Obs.Metrics.gauge_value g)

let test_kind_clash () =
  reset ();
  let _ = Obs.Metrics.counter "test/clash" in
  Alcotest.check_raises "gauge under a counter name"
    (Invalid_argument "Obs.Metrics: test/clash already registered as a counter")
    (fun () -> ignore (Obs.Metrics.gauge "test/clash"))

let test_disabled () =
  reset ();
  let c = Obs.Metrics.counter "test/off" in
  let h = Obs.Metrics.histogram "test/off_h" in
  Obs.Metrics.set_enabled false;
  Obs.Metrics.incr c;
  Obs.Metrics.observe h 5;
  Obs.Metrics.set_enabled true;
  Alcotest.(check int) "disabled add is a no-op" 0 (Obs.Metrics.counter_value c);
  Alcotest.(check int) "disabled observe is a no-op" 0 (Obs.Metrics.hist_count h)

let test_reset () =
  reset ();
  let c = Obs.Metrics.counter "test/r" in
  Obs.Metrics.add c 9;
  Obs.Metrics.reset ();
  Alcotest.(check int) "reset zeroes, handle stays valid" 0
    (Obs.Metrics.counter_value c);
  Obs.Metrics.incr c;
  Alcotest.(check int) "handle usable after reset" 1 (Obs.Metrics.counter_value c)

(* ---------------- histograms ---------------- *)

let test_hist_basic () =
  reset ();
  let h = Obs.Metrics.histogram "test/h" in
  List.iter (Obs.Metrics.observe h) [ 1; 2; 3; 100 ];
  Alcotest.(check int) "count" 4 (Obs.Metrics.hist_count h);
  Alcotest.(check int) "sum" 106 (Obs.Metrics.hist_sum h);
  Alcotest.(check int) "min" 1 (Obs.Metrics.hist_min h);
  Alcotest.(check int) "max" 100 (Obs.Metrics.hist_max h);
  Alcotest.(check (float 1e-6)) "mean" 26.5 (Obs.Metrics.hist_mean h)

let test_hist_quantiles () =
  reset ();
  let h = Obs.Metrics.histogram "test/q" in
  for v = 1 to 1000 do
    Obs.Metrics.observe h v
  done;
  (* power-of-two buckets: the quantile is the upper bound of the bucket
     holding the q-th observation, clamped to the observed max *)
  Alcotest.(check int) "p50 within one power of two" 512
    (Obs.Metrics.quantile h 0.5);
  Alcotest.(check int) "p99 clamps to max" 1000 (Obs.Metrics.quantile h 0.99);
  let one = Obs.Metrics.histogram "test/q1" in
  Obs.Metrics.observe one 7;
  Alcotest.(check int) "single observation p50" 7 (Obs.Metrics.quantile one 0.5)

let test_dump_sorted () =
  reset ();
  ignore (Obs.Metrics.counter "sorted/zz");
  ignore (Obs.Metrics.counter "sorted/aa");
  (* registration outlives reset and the registry is process-wide (the
     linked libraries register snowboard.* at module init), so look at
     this test's names only *)
  let names =
    List.filter_map
      (fun s ->
        let n = s.Obs.Metrics.name in
        if String.length n > 7 && String.sub n 0 7 = "sorted/" then Some n
        else None)
      (Obs.Metrics.dump ())
  in
  Alcotest.(check (list string))
    "dump is sorted" [ "sorted/aa"; "sorted/zz" ] names

(* ---------------- spans ---------------- *)

let test_span_nesting () =
  reset ();
  Obs.Span.with_span "outer" (fun () ->
      Obs.Span.with_span "a" (fun () -> ());
      Obs.Span.with_span "b" (fun () ->
          Obs.Span.with_span "b1" (fun () -> ())));
  match Obs.Span.roots () with
  | [ outer ] ->
      Alcotest.(check string) "root name" "outer" outer.Obs.Span.name;
      Alcotest.(check (list string))
        "children in execution order" [ "a"; "b" ]
        (List.map (fun s -> s.Obs.Span.name) outer.Obs.Span.children);
      Alcotest.(check int) "tree depth" 3 (Obs.Span.depth outer);
      Alcotest.(check bool) "durations are positive" true
        (outer.Obs.Span.dur_us >= 1)
  | l -> Alcotest.failf "expected one root, got %d" (List.length l)

let test_span_deltas () =
  reset ();
  let c = Obs.Metrics.counter "test/span_c" in
  Obs.Span.with_span "work" (fun () -> Obs.Metrics.add c 5);
  match Obs.Span.roots () with
  | [ s ] ->
      Alcotest.(check (list (pair string int)))
        "counter growth attributed to the span"
        [ ("test/span_c", 5) ]
        s.Obs.Span.deltas
  | _ -> Alcotest.fail "expected one root span"

let test_span_exn () =
  reset ();
  (try Obs.Span.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 1
    (List.length (Obs.Span.roots ()))

(* ---------------- export ---------------- *)

let test_json_round_trip () =
  let j =
    Obs.Export.(
      Obj
        [
          ("a", Int 1);
          ("b", Float 2.5);
          ("c", String "x \"quoted\"\nline");
          ("d", List [ Bool true; Null ]);
          ("e", Obj []);
        ])
  in
  Alcotest.(check bool) "to_string . of_string is the identity" true
    (Obs.Export.of_string (Obs.Export.to_string j) = j)

let test_registry_json () =
  reset ();
  let c = Obs.Metrics.counter "test/j" in
  Obs.Metrics.add c 3;
  Obs.Span.with_span "phase" (fun () -> ());
  let s = Obs.Export.to_string (Obs.Export.registry_json ()) in
  match Obs.Export.of_string s with
  | Obs.Export.Obj fields ->
      Alcotest.(check bool) "has schema" true (List.mem_assoc "schema" fields);
      Alcotest.(check bool) "has metrics" true (List.mem_assoc "metrics" fields);
      Alcotest.(check bool) "has spans" true (List.mem_assoc "spans" fields)
  | _ -> Alcotest.fail "registry_json is not an object"

(* Malformed documents must raise Parse_error (never Failure or an
   index error), and of_string_opt must map exactly that to None. *)
let test_parser_rejects () =
  let bad =
    [
      ("trailing garbage", "{}\ntrailing");
      ("trailing value", "1 2");
      ("unterminated string", "\"abc");
      ("unterminated string with escape", "\"abc\\");
      ("unterminated object", "{\"a\": 1");
      ("unterminated list", "[1, 2");
      ("bare comma", "[1,,2]");
      ("bad escape", "\"\\x41\"");
      ("bad unicode escape", "\"\\uZZZZ\"");
      ("underscored unicode escape", "\"\\u00_1\"");
      ("truncated unicode escape", "\"\\u00");
      ("bad number", "-");
      ("empty input", "");
      ("just whitespace", "   \n\t ");
      ("unquoted key", "{a: 1}");
      ("missing colon", "{\"a\" 1}");
    ]
  in
  List.iter
    (fun (label, s) ->
      (match Obs.Export.of_string s with
      | exception Obs.Export.Parse_error _ -> ()
      | exception e ->
          Alcotest.failf "%s: raised %s, not Parse_error" label
            (Printexc.to_string e)
      | v ->
          Alcotest.failf "%s: accepted as %s" label (Obs.Export.to_string v));
      Alcotest.(check bool)
        (label ^ " maps to None") true
        (Obs.Export.of_string_opt s = None))
    bad

let test_parser_accepts () =
  let ok =
    [
      ("surrounding whitespace", " \n {} \n ", Obs.Export.Obj []);
      ("escaped quote", {|"a\"b"|}, Obs.Export.String "a\"b");
      ("low unicode escape", "\"\\u0007\"", Obs.Export.String "\007");
      ("negative int", "-42", Obs.Export.Int (-42));
      ("float", "2.5", Obs.Export.Float 2.5);
    ]
  in
  List.iter
    (fun (label, s, expected) ->
      Alcotest.(check bool) label true (Obs.Export.of_string s = expected);
      Alcotest.(check bool)
        (label ^ " via of_string_opt") true
        (Obs.Export.of_string_opt s = Some expected))
    ok

let test_deterministic_mode () =
  reset ();
  let h = Obs.Metrics.histogram ~unit_:"us" "test/wall" in
  Obs.Metrics.observe h 100;
  let c = Obs.Metrics.counter "test/det" in
  Obs.Metrics.incr c;
  let names json =
    match json with
    | Obs.Export.List l ->
        List.filter_map
          (function
            | Obs.Export.Obj f -> (
                match List.assoc_opt "name" f with
                | Some (Obs.Export.String n) -> Some n
                | _ -> None)
            | _ -> None)
          l
    | _ -> []
  in
  let det = names (Obs.Export.metrics_json ~deterministic:true ()) in
  Alcotest.(check bool) "wall-clock metric omitted" false
    (List.mem "test/wall" det);
  Alcotest.(check bool) "counter kept" true (List.mem "test/det" det)

(* ---------------- pipeline integration ---------------- *)

let test_pipeline_populates_registry () =
  reset ();
  let cfg =
    {
      Harness.Pipeline.default with
      Harness.Pipeline.fuzz_iters = 60;
      trials_per_test = 2;
    }
  in
  let t = Harness.Pipeline.prepare cfg in
  let _stats =
    Harness.Pipeline.run_method t
      (Core.Select.Strategy Core.Cluster.S_INS_PAIR) ~budget:2
  in
  let values =
    List.filter_map
      (fun (s : Obs.Metrics.sample) ->
        match s.Obs.Metrics.value with
        | Obs.Metrics.Sample_counter v -> Some (s.Obs.Metrics.name, v)
        | _ -> None)
      (Obs.Metrics.dump ())
  in
  List.iter
    (fun name ->
      match List.assoc_opt name values with
      | Some v when v > 0 -> ()
      | Some _ -> Alcotest.failf "%s is zero after a pipeline run" name
      | None -> Alcotest.failf "%s not registered" name)
    [
      "snowboard.vmm/instructions_retired";
      "snowboard.vmm/accesses_traced";
      "snowboard.vmm/snapshot_restores";
      "snowboard.sched/seq_runs";
      "snowboard.sched/trials";
      "snowboard.fuzzer/programs_generated";
      "snowboard.core/profiles_built";
      "snowboard.core/pmc_pairs_considered";
      "snowboard.detectors/oracle_invocations";
    ];
  let root_names = List.map (fun s -> s.Obs.Span.name) (Obs.Span.roots ()) in
  Alcotest.(check bool) "prepare span recorded" true
    (List.mem "pipeline.prepare" root_names);
  match
    List.find_opt
      (fun s -> s.Obs.Span.name = "pipeline.prepare")
      (Obs.Span.roots ())
  with
  | Some prep ->
      let kids = List.map (fun s -> s.Obs.Span.name) prep.Obs.Span.children in
      Alcotest.(check (list string))
        "phase spans in pipeline order"
        [ "boot"; "fuzz"; "profile"; "identify" ]
        kids
  | None -> Alcotest.fail "pipeline.prepare span missing"

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "kind clash" `Quick test_kind_clash;
          Alcotest.test_case "disabled" `Quick test_disabled;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "basic stats" `Quick test_hist_basic;
          Alcotest.test_case "quantiles" `Quick test_hist_quantiles;
          Alcotest.test_case "dump sorted" `Quick test_dump_sorted;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "deltas" `Quick test_span_deltas;
          Alcotest.test_case "exception safety" `Quick test_span_exn;
        ] );
      ( "export",
        [
          Alcotest.test_case "json round trip" `Quick test_json_round_trip;
          Alcotest.test_case "registry json" `Quick test_registry_json;
          Alcotest.test_case "parser rejects malformed input" `Quick
            test_parser_rejects;
          Alcotest.test_case "parser accepts edge cases" `Quick
            test_parser_accepts;
          Alcotest.test_case "deterministic mode" `Quick test_deterministic_mode;
        ] );
      ( "integration",
        [
          Alcotest.test_case "pipeline populates registry" `Quick
            test_pipeline_populates_registry;
        ] );
    ]
