(* Harness-level tests: pipeline phases, reporting, scenario inventory,
   and the PCT policy. *)

module P = Fuzzer.Prog
module Exec = Sched.Exec

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let small_cfg =
  {
    Harness.Pipeline.default with
    Harness.Pipeline.fuzz_iters = 120;
    trials_per_test = 8;
  }

let t = lazy (Harness.Pipeline.prepare small_cfg)

let test_fuzz_deterministic () =
  let env = Exec.make_env Kernel.Config.v5_12_rc3 in
  let c1, s1 = Harness.Pipeline.fuzz env ~seed:9 ~iters:100 in
  let c2, s2 = Harness.Pipeline.fuzz env ~seed:9 ~iters:100 in
  checki "same corpus size" (Fuzzer.Corpus.size c1) (Fuzzer.Corpus.size c2);
  checki "same edges" (Fuzzer.Corpus.total_edges c1) (Fuzzer.Corpus.total_edges c2);
  checki "same guest steps" s1 s2;
  let c3, _ = Harness.Pipeline.fuzz env ~seed:10 ~iters:100 in
  ignore c3

let test_fuzz_grows_coverage () =
  let env = Exec.make_env Kernel.Config.v5_12_rc3 in
  let c1, _ = Harness.Pipeline.fuzz env ~seed:3 ~iters:50 in
  let c2, _ = Harness.Pipeline.fuzz env ~seed:3 ~iters:400 in
  checkb "more iterations, at least as much coverage" true
    (Fuzzer.Corpus.total_edges c2 >= Fuzzer.Corpus.total_edges c1)

let test_seed_corpus_offered_first () =
  let env = Exec.make_env Kernel.Config.v5_12_rc3 in
  let seeds = Harness.Pipeline.scenario_seeds () in
  let c, _ = Harness.Pipeline.fuzz ~seeds env ~seed:3 ~iters:0 in
  checkb "seeds alone build a corpus" true (Fuzzer.Corpus.size c > 5);
  checkb "not every seed is coverage-novel" true
    (Fuzzer.Corpus.size c < List.length seeds)

let test_profiles_and_ident_nonempty () =
  let t = Lazy.force t in
  checkb "profiles cover the corpus" true
    (List.length t.Harness.Pipeline.profiles
    = Fuzzer.Corpus.size t.Harness.Pipeline.corpus);
  checkb "every profile has shared accesses" true
    (List.for_all
       (fun p -> Core.Profile.length p > 0)
       t.Harness.Pipeline.profiles);
  checkb "PMCs identified" true (Core.Identify.num_pmcs t.Harness.Pipeline.ident > 0)

let test_prog_of_id () =
  let t = Lazy.force t in
  let entries = Fuzzer.Corpus.to_list t.Harness.Pipeline.corpus in
  List.iter
    (fun (e : Fuzzer.Corpus.entry) ->
      checkb "roundtrip" true
        (P.equal (Harness.Pipeline.prog_of_id t e.Fuzzer.Corpus.id) e.Fuzzer.Corpus.prog))
    entries;
  Alcotest.check_raises "unknown id"
    (Invalid_argument "pipeline: unknown corpus id 99999") (fun () ->
      ignore (Harness.Pipeline.prog_of_id t 99999))

let test_run_method_stats_consistent () =
  let t = Lazy.force t in
  let s =
    Harness.Pipeline.run_method t (Core.Select.Strategy Core.Cluster.S_MEM)
      ~budget:30
  in
  checkb "executed <= planned" true (s.Harness.Pipeline.executed <= 30);
  checkb "hinted <= executed" true
    (s.Harness.Pipeline.hinted <= s.Harness.Pipeline.executed);
  checkb "exercised <= hinted" true
    (s.Harness.Pipeline.hint_exercised <= s.Harness.Pipeline.hinted);
  checkb "trials bounded" true
    (s.Harness.Pipeline.total_trials
    <= s.Harness.Pipeline.executed * small_cfg.Harness.Pipeline.trials_per_test);
  List.iter
    (fun (_, at) ->
      checkb "issue index within executed range" true
        (at >= 1 && at <= s.Harness.Pipeline.executed))
    s.Harness.Pipeline.issues

let test_issues_union () =
  let mk issues =
    {
      Harness.Pipeline.method_ = Core.Select.Random_pairing;
      num_clusters = 0;
      planned = 0;
      executed = 0;
      hinted = 0;
      hint_exercised = 0;
      pmc_observed = 0;
      issues;
      unknown_findings = 0;
      total_trials = 0;
      total_steps = 0;
      bugs = [];
      outcomes = Harness.Pipeline.zero_outcomes;
    }
  in
  checkb "union sorted and deduped" true
    (Harness.Pipeline.issues_union [ mk [ (13, 1); (2, 5) ]; mk [ (13, 3); (14, 2) ] ]
    = [ 2; 13; 14 ])

let test_reports_print () =
  (* the report renderers must not raise on real data *)
  let t = Lazy.force t in
  let s =
    Harness.Pipeline.run_method t (Core.Select.Strategy Core.Cluster.S_INS)
      ~budget:20
  in
  Harness.Report.pmc_summary t;
  Harness.Report.table3 [ s ];
  Harness.Report.accuracy [ s ];
  Harness.Report.table2 ~found:[ ("test", List.map fst s.Harness.Pipeline.issues) ];
  checkb "reports printed" true true

let test_scenarios_inventory () =
  checki "17 scenarios" 17 (List.length Harness.Scenarios.all);
  let ids = List.map (fun s -> s.Harness.Scenarios.issue) Harness.Scenarios.all in
  checkb "ids are 1..17" true (List.sort compare ids = List.init 17 (fun i -> i + 1));
  (* every scenario yields at least one hinted PMC from its own profiles *)
  let env = Exec.make_env Kernel.Config.all_buggy in
  List.iter
    (fun s ->
      let _, hints = Harness.Scenarios.identify env s in
      checkb
        (Printf.sprintf "scenario #%d has hints" s.Harness.Scenarios.issue)
        true (hints <> []))
    Harness.Scenarios.all

let test_feedback_loop () =
  let t = Lazy.force t in
  let r = Harness.Feedback.run t ~budget:30 ~trials:6 ~seed:4 in
  checki "budget respected" 30 r.Harness.Feedback.executed;
  checkb "communication coverage accumulated" true
    (r.Harness.Feedback.comm_coverage > 0);
  (* the curve is monotonically non-decreasing and ends at the total *)
  let rec mono = function
    | a :: (b :: _ as rest) -> a <= b && mono rest
    | _ -> true
  in
  checkb "coverage curve monotone" true (mono r.Harness.Feedback.coverage_curve);
  checki "curve length = executed" 30
    (List.length r.Harness.Feedback.coverage_curve);
  checkb "curve ends at the total" true
    (List.nth r.Harness.Feedback.coverage_curve 29
    = r.Harness.Feedback.comm_coverage);
  checkb "finds at least the ubiquitous race" true
    (List.mem_assoc 13 r.Harness.Feedback.issues)

let test_pct_policy_shape () =
  (* depth-d PCT makes at most d-1 voluntary switches *)
  let rng = Random.State.make [| 4 |] in
  let policy = Sched.Policies.pct rng ~depth:3 ~est_len:100 in
  let switches = ref 0 in
  for _ = 1 to 200 do
    if policy.Exec.decide 0 (Vmm.Vm.make_sink ()) then incr switches
  done;
  checkb "at most depth-1 switches" true (!switches <= 2)

let test_pct_explores () =
  (* PCT eventually finds the easy benign race *)
  let env = Exec.make_env Kernel.Config.v5_12_rc3 in
  let prog = [ { P.nr = Kernel.Abi.sys_socket; args = [ P.Const 1; P.Const 0 ] } ] in
  let res =
    Sched.Explore.run env ~ident:None ~writer:prog ~reader:prog ~hint:None
      ~kind:(Sched.Explore.Pct 3) ~trials:200 ~seed:2 ~stop_on_bug:true ()
  in
  checkb "pct finds #13" true (List.mem 13 (Sched.Explore.issues_found res))

let tests =
  [
    Alcotest.test_case "fuzz deterministic" `Quick test_fuzz_deterministic;
    Alcotest.test_case "fuzz grows coverage" `Quick test_fuzz_grows_coverage;
    Alcotest.test_case "seed corpus" `Quick test_seed_corpus_offered_first;
    Alcotest.test_case "profiles and identification" `Quick
      test_profiles_and_ident_nonempty;
    Alcotest.test_case "prog_of_id" `Quick test_prog_of_id;
    Alcotest.test_case "method stats consistent" `Quick
      test_run_method_stats_consistent;
    Alcotest.test_case "issues union" `Quick test_issues_union;
    Alcotest.test_case "reports print" `Quick test_reports_print;
    Alcotest.test_case "scenario inventory" `Slow test_scenarios_inventory;
    Alcotest.test_case "feedback loop" `Slow test_feedback_loop;
    Alcotest.test_case "pct switch budget" `Quick test_pct_policy_shape;
    Alcotest.test_case "pct explores" `Quick test_pct_explores;
  ]

let () = Alcotest.run "harness" [ ("pipeline", tests) ]
