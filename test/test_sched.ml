(* Tests for the execution framework: sequential/concurrent executors,
   scheduling policies (Algorithm 2 mechanics), liveness handling and
   replay determinism. *)

module Abi = Kernel.Abi
module P = Fuzzer.Prog
module Exec = Sched.Exec
module Explore = Sched.Explore
module Policies = Sched.Policies
module Trace = Vmm.Trace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let c nr args = { P.nr; args }
let k v = P.Const v

let env = lazy (Exec.make_env Kernel.Config.all_buggy)

let sock_prog = [ c Abi.sys_socket [ k Abi.af_inet; k 0 ] ]

let msg_prog = [ c Abi.sys_msgget [ k 1 ]; c Abi.sys_msgget [ k 2 ] ]

(* a one-access sink frame, for driving policies without guest code *)
let sink_of_access a =
  let s = Vmm.Vm.make_sink () in
  Vmm.Vm.sink_push_access s a;
  s

(* returns true even on event-free sinks: not batchable *)
let always_switch : Exec.policy =
  {
    Exec.first = 0;
    decide = (fun _ _ -> true);
    event_only = false;
    on_plain = ignore;
  }

let never_switch : Exec.policy =
  {
    Exec.first = 0;
    decide = (fun _ _ -> false);
    event_only = true;
    on_plain = ignore;
  }

let test_conc_completes_both () =
  let e = Lazy.force env in
  let res = Exec.run_conc e ~writer:sock_prog ~reader:msg_prog ~policy:never_switch () in
  checkb "no deadlock" false res.Exec.cc_deadlocked;
  checki "writer fd" 0 res.Exec.cc_retvals.(0).(0);
  checki "reader first id" 100 res.Exec.cc_retvals.(1).(0);
  checki "reader second id" 101 res.Exec.cc_retvals.(1).(1)

let test_conc_interleaves () =
  let e = Lazy.force env in
  let res =
    Exec.run_conc e ~writer:msg_prog ~reader:msg_prog ~policy:always_switch ()
  in
  checkb "no deadlock under max preemption" false res.Exec.cc_deadlocked;
  checkb "both made progress" true
    (res.Exec.cc_accesses.(0) <> [] && res.Exec.cc_accesses.(1) <> []);
  (* msq ids are globally unique even under full interleaving *)
  let ids =
    List.concat_map Array.to_list (Array.to_list res.Exec.cc_retvals)
    |> List.sort compare
  in
  checkb "ids unique" true (List.sort_uniq compare ids = ids)

let test_spinlock_contention_progresses () =
  (* both threads hammer the ext4 lock: the pause-based liveness switch
     must let them alternate rather than deadlock *)
  let e = Lazy.force env in
  let prog =
    [
      c Abi.sys_open [ k 1; k 0 ];
      c Abi.sys_read [ P.Res 0; k 8 ];
      c Abi.sys_write [ P.Res 0; k 8 ];
      c Abi.sys_read [ P.Res 0; k 8 ];
    ]
  in
  let res = Exec.run_conc e ~writer:prog ~reader:prog ~policy:always_switch () in
  checkb "completes" false res.Exec.cc_deadlocked;
  checki "writer all ok" 0 res.Exec.cc_retvals.(0).(3);
  checki "reader all ok" 0 res.Exec.cc_retvals.(1).(3)

let test_observer_sees_shared_only () =
  let e = Lazy.force env in
  let seen = ref [] in
  let observer =
    {
      Exec.default_observer with
      Exec.on_access = (fun a ~ctx -> seen := (a, ctx) :: !seen);
    }
  in
  let res =
    Exec.run_conc e ~writer:sock_prog ~reader:sock_prog ~policy:never_switch
      ~observer ()
  in
  checkb "observer saw accesses" true (!seen <> []);
  checkb "all shared" true (List.for_all (fun (a, _) -> Trace.is_shared a) !seen);
  checkb "contexts attributed" true
    (List.exists (fun (_, ctx) -> ctx = "cache_alloc_refill") !seen);
  checkb "helpers not used as context" true
    (List.for_all (fun (_, ctx) -> ctx <> "memcpy" && ctx <> "spin_lock") !seen);
  ignore res

let test_replay_determinism () =
  (* same seed -> identical trial outcomes, including accesses *)
  let e = Lazy.force env in
  let s = List.nth Harness.Scenarios.all 11 (* #12, l2tp *) in
  let run () =
    let rng = Random.State.make [| 5 |] in
    let st = Policies.snowboard_state None in
    let policy = Policies.snowboard rng st in
    Exec.run_conc e ~writer:s.Harness.Scenarios.writer
      ~reader:s.Harness.Scenarios.reader ~policy ()
  in
  let r1 = run () and r2 = run () in
  checkb "same steps" true (r1.Exec.cc_steps = r2.Exec.cc_steps);
  checkb "same accesses" true (r1.Exec.cc_accesses = r2.Exec.cc_accesses);
  checkb "same console" true (r1.Exec.cc_console = r2.Exec.cc_console)

let test_snowboard_policy_switch_points () =
  (* the snowboard policy requests switches only at PMC or flagged
     accesses *)
  let mk_access ?(pc = 10) ?(addr = 0x100) kind =
    {
      Trace.thread = 0;
      pc;
      addr;
      size = 8;
      kind;
      value = 1;
      atomic = false;
      sp = Vmm.Layout.stack_top 0 - 32;
    }
  in
  let pmc =
    Core.Pmc.make
      ~write:{ Core.Pmc.ins = 10; addr = 0x100; size = 8; value = 1 }
      ~read:{ Core.Pmc.ins = 20; addr = 0x100; size = 8; value = 0 }
      ~df_leader:false
  in
  let st = Policies.snowboard_state (Some pmc) in
  let rng = Random.State.make [| 3 |] in
  let policy = Policies.snowboard rng st in
  (* a non-PMC access never triggers a switch request *)
  let wants = ref false in
  for _ = 1 to 50 do
    if policy.Exec.decide 0 (sink_of_access (mk_access ~pc:99 ~addr:0x900 Trace.Read))
    then wants := true
  done;
  checkb "non-PMC access never switches" false !wants;
  (* a matching PMC write eventually triggers a switch *)
  let wants = ref false in
  for _ = 1 to 50 do
    if policy.Exec.decide 0 (sink_of_access (mk_access Trace.Write)) then
      wants := true
  done;
  checkb "PMC access switches eventually" true !wants

let test_snowboard_flags_learned () =
  let pmc =
    Core.Pmc.make
      ~write:{ Core.Pmc.ins = 10; addr = 0x100; size = 8; value = 1 }
      ~read:{ Core.Pmc.ins = 20; addr = 0x100; size = 8; value = 0 }
      ~df_leader:false
  in
  let st = Policies.snowboard_state (Some pmc) in
  let rng = Random.State.make [| 3 |] in
  let policy = Policies.snowboard rng st in
  let acc ~pc ~addr kind =
    {
      Trace.thread = 0;
      pc;
      addr;
      size = 8;
      kind;
      value = 1;
      atomic = false;
      sp = Vmm.Layout.stack_top 0 - 32;
    }
  in
  (* precede the PMC access with a distinctive access: it becomes a flag *)
  ignore (policy.Exec.decide 0 (sink_of_access (acc ~pc:7 ~addr:0x500 Trace.Read)));
  ignore (policy.Exec.decide 0 (sink_of_access (acc ~pc:10 ~addr:0x100 Trace.Write)));
  checki "flag recorded" 1 (Hashtbl.length st.Policies.flags);
  checkb "flag is the preceding access" true
    (Hashtbl.mem st.Policies.flags (7, Trace.Read, 0x500))

let test_explore_trial_count () =
  let e = Lazy.force env in
  let res =
    Explore.run e ~ident:None ~writer:sock_prog ~reader:sock_prog ~hint:None
      ~kind:(Explore.Naive 4) ~trials:5 ~seed:1 ~stop_on_bug:false ()
  in
  checki "all trials run" 5 (List.length res.Explore.trials);
  let res2 =
    Explore.run e ~ident:None ~writer:sock_prog ~reader:sock_prog ~hint:None
      ~kind:(Explore.Naive 2) ~trials:50 ~seed:1 ~stop_on_bug:true ()
  in
  (* #13 fires quickly under naive preemption; stop_on_bug halts there *)
  checkb "stops at first bug" true
    (match res2.Explore.first_bug with
    | Some n -> List.length res2.Explore.trials = n
    | None -> List.length res2.Explore.trials = 50)

let test_ski_policy_instruction_triggered () =
  (* SKI yields at the PMC's instructions regardless of the memory
     target, and nowhere else (section 5.4) *)
  let pmc =
    Core.Pmc.make
      ~write:{ Core.Pmc.ins = 10; addr = 0x100; size = 8; value = 1 }
      ~read:{ Core.Pmc.ins = 20; addr = 0x100; size = 8; value = 0 }
      ~df_leader:false
  in
  let rng = Random.State.make [| 3 |] in
  let policy = Policies.ski rng (Some pmc) in
  let acc ~pc ~addr =
    {
      Trace.thread = 0;
      pc;
      addr;
      size = 8;
      kind = Trace.Write;
      value = 1;
      atomic = false;
      sp = Vmm.Layout.stack_top 0 - 32;
    }
  in
  let wants = ref false in
  for _ = 1 to 50 do
    if policy.Exec.decide 0 (sink_of_access (acc ~pc:10 ~addr:0x999)) then
      wants := true
  done;
  checkb "ski yields regardless of target" true !wants;
  let wants = ref false in
  for _ = 1 to 50 do
    if policy.Exec.decide 0 (sink_of_access (acc ~pc:11 ~addr:0x100)) then
      wants := true
  done;
  checkb "ski ignores other instructions" false !wants

let tests =
  [
    Alcotest.test_case "concurrent completion" `Quick test_conc_completes_both;
    Alcotest.test_case "interleaving correctness" `Quick test_conc_interleaves;
    Alcotest.test_case "spinlock contention" `Quick test_spinlock_contention_progresses;
    Alcotest.test_case "observer filtering+attribution" `Quick
      test_observer_sees_shared_only;
    Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
    Alcotest.test_case "snowboard switch points" `Quick
      test_snowboard_policy_switch_points;
    Alcotest.test_case "snowboard flags" `Quick test_snowboard_flags_learned;
    Alcotest.test_case "explore trials" `Quick test_explore_trial_count;
    Alcotest.test_case "ski instruction triggering" `Quick
      test_ski_policy_instruction_triggered;
  ]

let () = Alcotest.run "sched" [ ("exec+policies", tests) ]
