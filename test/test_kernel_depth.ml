(* Deeper kernel semantics: per-issue bug-class validation (data race vs
   atomicity/order violation), process isolation, allocator behaviour
   under snapshots, and the harmful *effects* of the planted bugs (lost
   updates, torn reads) - not just their detector signatures. *)

module Abi = Kernel.Abi
module P = Fuzzer.Prog
module Exec = Sched.Exec
module Layout = Vmm.Layout
module Vm = Vmm.Vm

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let c nr args = { P.nr; args }
let k v = P.Const v

let env = lazy (Exec.make_env Kernel.Config.all_buggy)

(* Run one concurrent trial under a seeded dense policy with the race
   detector attached; returns (result, race reports). *)
let trial ?(period = 2) e ~writer ~reader ~seed =
  let race = Detectors.Race.create () in
  let observer =
    {
      Exec.default_observer with
      Exec.on_access = (fun a ~ctx -> Detectors.Race.on_access race a ~ctx);
    }
  in
  let rng = Random.State.make [| seed |] in
  let res =
    Exec.run_conc e ~writer ~reader
      ~policy:(Sched.Policies.naive rng ~period)
      ~observer ()
  in
  (res, Detectors.Race.reports race)

let test_issue12_is_pure_order_violation () =
  (* when the l2tp crash triggers, no l2tp data race may be reported:
     the bug class is OV, every involved access is marked or locked *)
  let e = Lazy.force env in
  let s = match Harness.Scenarios.find 12 with Some s -> s | None -> assert false in
  let crashed = ref false in
  for seed = 1 to 60 do
    if not !crashed then begin
      let res, races =
        trial e ~writer:s.Harness.Scenarios.writer ~reader:s.Harness.Scenarios.reader
          ~seed
      in
      if res.Exec.cc_panicked then begin
        crashed := true;
        List.iter
          (fun r ->
            checkb "no l2tp data race accompanies the crash" true
              (Detectors.Oracle.issue_of_race r = Some 13))
          races
      end
    end
  done;
  checkb "l2tp crash reproduced" true !crashed

let test_issue2_is_pure_atomicity_violation () =
  (* the checksum error must appear with no ext4 data race: both sides
     hold the same lock *)
  let e = Lazy.force env in
  let s = match Harness.Scenarios.find 2 with Some s -> s | None -> assert false in
  let seen = ref false in
  for seed = 1 to 60 do
    if not !seen then begin
      let res, races =
        trial e ~writer:s.Harness.Scenarios.writer ~reader:s.Harness.Scenarios.reader
          ~seed
      in
      if
        List.exists (fun l -> Detectors.Oracle.issue_of_console l = Some 2)
          res.Exec.cc_console
      then begin
        seen := true;
        List.iter
          (fun r ->
            checkb "no ext4 race accompanies the AV" true
              (Detectors.Oracle.issue_of_race r = Some 13))
          races
      end
    end
  done;
  checkb "checksum violation reproduced" true !seen

let test_mac_partial_update_effect () =
  (* issue #9's harmful effect: the reader's user buffer can receive a
     MAC that is neither the old nor the new address *)
  let e = Lazy.force env in
  let old_mac = [ 0xaa; 0xbb; 0xcc; 0xdd; 0xee; 0xff ] in
  let new_mac = [ 0x01; 0x02; 0x03; 0x04; 0x05; 0x06 ] in
  let writer =
    [
      c Abi.sys_socket [ k Abi.af_inet; k 0 ];
      c Abi.sys_ioctl
        [ P.Res 0; k Abi.siocsifhwaddr; P.Buf "\x01\x02\x03\x04\x05\x06" ];
    ]
  in
  let reader =
    [
      c Abi.sys_socket [ k Abi.af_inet; k 0 ];
      c Abi.sys_ioctl
        [ P.Res 0; k Abi.siocgifhwaddr; P.Buf "\x00\x00\x00\x00\x00\x00" ];
    ]
  in
  let torn = ref false in
  for seed = 1 to 100 do
    if not !torn then begin
      let _ = trial e ~writer ~reader ~seed in
      (* the reader's destination buffer: call 1, arg 2 *)
      let base = P.buf_addr 1 + 32 in
      let got = List.init 6 (fun i -> Vm.peek e.Exec.vm 1 (base + i) 1) in
      if got <> old_mac && got <> new_mac && got <> [ 0; 0; 0; 0; 0; 0 ] then
        torn := true
    end
  done;
  checkb "a torn MAC was observed" true !torn

let test_snd_ctl_lost_update_effect () =
  (* issue #15's harmful effect: two concurrent adds can leave the
     user-controls count at 1 instead of 2 (lost update) *)
  let e = Lazy.force env in
  let region =
    List.find
      (fun (r : Vmm.Asm.region) -> r.Vmm.Asm.name = "snd_ctl")
      e.Exec.kern.Kernel.image.Vmm.Asm.regions
  in
  let prog =
    [
      c Abi.sys_open [ k 0; k 0 ];
      c Abi.sys_ioctl [ P.Res 0; k Abi.sndrv_ctl_elem_add; k 1 ];
    ]
  in
  let lost = ref false in
  for seed = 1 to 100 do
    if not !lost then begin
      let res, _ = trial e ~writer:prog ~reader:prog ~seed in
      ignore res;
      let count = Vm.peek e.Exec.vm 0 region.Vmm.Asm.addr 8 in
      if count = 1 then lost := true
    end
  done;
  checkb "a lost update was observed" true !lost

let test_snd_ctl_no_lost_update_when_fixed () =
  let e = Exec.make_env Kernel.Config.all_fixed in
  let region =
    List.find
      (fun (r : Vmm.Asm.region) -> r.Vmm.Asm.name = "snd_ctl")
      e.Exec.kern.Kernel.image.Vmm.Asm.regions
  in
  let prog =
    [
      c Abi.sys_open [ k 0; k 0 ];
      c Abi.sys_ioctl [ P.Res 0; k Abi.sndrv_ctl_elem_add; k 1 ];
    ]
  in
  for seed = 1 to 40 do
    let _ = trial e ~writer:prog ~reader:prog ~seed in
    checki "count always 2 when locked" 2
      (Vm.peek e.Exec.vm 0 region.Vmm.Asm.addr 8)
  done

let test_fd_tables_isolated () =
  (* the two processes' fd tables never alias: both get fd 0 *)
  let e = Lazy.force env in
  let prog = [ c Abi.sys_socket [ k Abi.af_inet; k 0 ] ] in
  let res, _ = trial e ~writer:prog ~reader:prog ~seed:1 in
  checki "writer fd 0" 0 res.Exec.cc_retvals.(0).(0);
  checki "reader fd 0" 0 res.Exec.cc_retvals.(1).(0)

let test_heap_deterministic_across_restore () =
  (* the slab allocator hands out identical addresses after a restore -
     the property PMC prediction relies on (section 4.1) *)
  let e = Lazy.force env in
  let prog =
    [
      c Abi.sys_socket [ k Abi.af_inet; k 0 ];
      c Abi.sys_msgget [ k 2 ];
      c 17 [] (* pipe: a 64-byte object, different size class *);
    ]
  in
  let r1 = Exec.run_seq e ~tid:0 prog in
  let r2 = Exec.run_seq e ~tid:0 prog in
  checkb "byte-identical traces" true (r1.Exec.sq_accesses = r2.Exec.sq_accesses)

let test_allocator_reuse_and_classes () =
  (* a freed 32-byte object is reused for the next 32-byte allocation,
     but never for a 64-byte one *)
  let e = Lazy.force env in
  let prog =
    [
      c Abi.sys_socket [ k Abi.af_inet; k 0 ] (* 32B object *);
      c Abi.sys_close [ P.Res 0 ];
      c 17 [] (* pipe: 64B, must NOT reuse the freed 32B slot *);
      c Abi.sys_socket [ k Abi.af_inet6; k 0 ] (* 32B: reuses it *);
    ]
  in
  let r = Exec.run_seq e ~tid:0 prog in
  checkb "all succeed" true (Array.for_all (fun v -> v >= 0) r.Exec.sq_retvals);
  (* find the object addresses from the trace: first write of the domain
     tag by sys_socket *)
  checkb "no panic" false r.Exec.sq_panicked

let test_fanout_capacity () =
  let e = Lazy.force env in
  let sock i = c Abi.sys_socket [ k Abi.af_packet; k i ] in
  let join i = c Abi.sys_setsockopt [ P.Res i; k Abi.so_packet_fanout; k 0 ] in
  let r =
    Exec.run_seq e ~tid:0
      [
        sock 0; sock 1; sock 2; sock 3; sock 4;
        join 0; join 1; join 2; join 3; join 4;
      ]
  in
  checki "4 members fit" 0 r.Exec.sq_retvals.(8);
  checki "5th member rejected" Abi.einval r.Exec.sq_retvals.(9)

let test_fanout_unlink_shifts () =
  let e = Lazy.force env in
  let r =
    Exec.run_seq e ~tid:0
      [
        c Abi.sys_socket [ k Abi.af_packet; k 0 ];
        c Abi.sys_socket [ k Abi.af_packet; k 1 ];
        c Abi.sys_setsockopt [ P.Res 0; k Abi.so_packet_fanout; k 0 ];
        c Abi.sys_setsockopt [ P.Res 1; k Abi.so_packet_fanout; k 0 ];
        c Abi.sys_close [ P.Res 0 ] (* unlink the first member *);
        c Abi.sys_sendmsg [ P.Res 1; k 8 ] (* demux over 1 member *);
      ]
  in
  checkb "demux still finds the surviving member" true (r.Exec.sq_retvals.(5) <> 0)

let test_rhash_stat_after_chain_ops () =
  (* stress the bucket-chain edit paths: interior removal *)
  let e = Lazy.force env in
  let r =
    Exec.run_seq e ~tid:0
      [
        c Abi.sys_msgget [ k 1 ] (* id 100, bucket 1 *);
        c Abi.sys_msgget [ k 9 ] (* id 101, same bucket, head *);
        c Abi.sys_msgget [ k 17 ] (* id 102, same bucket, head *);
        c Abi.sys_msgctl [ P.Res 1; k Abi.ipc_rmid ] (* interior removal *);
        c Abi.sys_msgget [ k 1 ];
        c Abi.sys_msgget [ k 17 ];
        c Abi.sys_msgctl [ P.Res 0; k Abi.ipc_stat ];
      ]
  in
  checki "key 1 survives interior removal" r.Exec.sq_retvals.(0) r.Exec.sq_retvals.(4);
  checki "key 17 survives" r.Exec.sq_retvals.(2) r.Exec.sq_retvals.(5);
  checki "stat finds key" 1 r.Exec.sq_retvals.(6)

let test_uart_flags_lost_update_effect () =
  (* issue #14's harmful effect: the ASYNC_INITIALIZED bit set by
     tty_port_open can be lost when autoconfig's read-modify-write
     interleaves *)
  let e = Lazy.force env in
  let region =
    List.find
      (fun (r : Vmm.Asm.region) -> r.Vmm.Asm.name = "uart_port")
      e.Exec.kern.Kernel.image.Vmm.Asm.regions
  in
  let opener = [ c Abi.sys_open [ k Abi.path_tty; k 0 ] ] in
  let configurer =
    [
      c Abi.sys_open [ k Abi.path_tty; k 0 ];
      c Abi.sys_ioctl [ P.Res 0; k Abi.tiocserconfig; k 0 ];
    ]
  in
  (* the torn window is two instructions inside a locked region, so the
     effect is rare (~0.1% of dense random trials); sweep seeds and
     periods deterministically until it shows *)
  let lost = ref false in
  let seed = ref 0 in
  while (not !lost) && !seed < 2000 do
    incr seed;
    let _ = trial e ~period:(1 + (!seed mod 4)) ~writer:configurer ~reader:opener ~seed:!seed in
    let flags = Vm.peek e.Exec.vm 0 region.Vmm.Asm.addr 8 in
    (* both bit 1 (open) and bit 2 (autoconfig) should be set; a lost
       update drops one *)
    if flags <> 3 then lost := true
  done;
  checkb "a lost flag update was observed" true !lost

let test_configfs_crash_only_with_item_window () =
  (* issue #11 requires the remove to land between the reader's two
     loads; sequentially interleaved full operations never crash *)
  let e = Lazy.force env in
  let res =
    Exec.run_conc e
      ~writer:[ c Abi.sys_open [ k Abi.path_configfs; k Abi.o_remove ] ]
      ~reader:[ c Abi.sys_open [ k Abi.path_configfs; k 0 ] ]
      ~policy:
        {
          Exec.first = 0;
          decide = (fun _ _ -> false);
          event_only = true;
          on_plain = ignore;
        }
      ()
  in
  checkb "serial order: no crash" false res.Exec.cc_panicked;
  checki "reader sees ENOENT after remove" Abi.enoent res.Exec.cc_retvals.(1).(0)

let test_dup_shares_object () =
  let e = Lazy.force env in
  let r =
    Exec.run_seq e ~tid:0
      [
        c Abi.sys_pipe [];
        c Abi.sys_dup [ P.Res 0 ];
        c Abi.sys_write [ P.Res 0; k 4 ] (* write via the original fd *);
        c Abi.sys_read [ P.Res 1; k 4 ] (* read via the dup *);
        c Abi.sys_close [ P.Res 0 ] (* first close keeps the pipe alive *);
        c Abi.sys_write [ P.Res 1; k 2 ];
        c Abi.sys_read [ P.Res 1; k 2 ];
        c Abi.sys_close [ P.Res 1 ] (* last close frees *);
        c Abi.sys_read [ P.Res 1; k 1 ] (* stale fd: EBADF *);
      ]
  in
  checkb "no panic" false r.Exec.sq_panicked;
  checkb "dup fd distinct" true (r.Exec.sq_retvals.(1) <> r.Exec.sq_retvals.(0));
  checki "data visible through the dup" 4 r.Exec.sq_retvals.(3);
  checki "first close ok" 0 r.Exec.sq_retvals.(4);
  checki "object alive after first close" 2 r.Exec.sq_retvals.(6);
  checki "last close ok" 0 r.Exec.sq_retvals.(7);
  checki "stale fd rejected" Abi.ebadf r.Exec.sq_retvals.(8)

let test_dup_fanout_single_unlink () =
  (* a dup'd packet socket in a fanout group is unlinked exactly once,
     at the last close *)
  let e = Lazy.force env in
  let r =
    Exec.run_seq e ~tid:0
      [
        c Abi.sys_socket [ k Abi.af_packet; k 0 ];
        c Abi.sys_setsockopt [ P.Res 0; k Abi.so_packet_fanout; k 0 ];
        c Abi.sys_dup [ P.Res 0 ];
        c Abi.sys_close [ P.Res 0 ];
        c Abi.sys_sendmsg [ P.Res 2; k 8 ] (* still a member: demux works *);
        c Abi.sys_close [ P.Res 2 ];
        c Abi.sys_socket [ k Abi.af_packet; k 0 ];
        c Abi.sys_sendmsg [ P.Res 6; k 8 ] (* group empty now *);
      ]
  in
  checkb "demux finds member while dup alive" true (r.Exec.sq_retvals.(4) <> 0);
  checki "demux empty after last close" 0 r.Exec.sq_retvals.(7)

let tests =
  [
    Alcotest.test_case "dup shares the object" `Quick test_dup_shares_object;
    Alcotest.test_case "dup + fanout unlink once" `Quick
      test_dup_fanout_single_unlink;
    Alcotest.test_case "#12 is a pure order violation" `Slow
      test_issue12_is_pure_order_violation;
    Alcotest.test_case "#2 is a pure atomicity violation" `Slow
      test_issue2_is_pure_atomicity_violation;
    Alcotest.test_case "#9 partial MAC effect" `Slow test_mac_partial_update_effect;
    Alcotest.test_case "#15 lost update effect" `Slow
      test_snd_ctl_lost_update_effect;
    Alcotest.test_case "#15 fixed: no lost update" `Slow
      test_snd_ctl_no_lost_update_when_fixed;
    Alcotest.test_case "fd tables isolated" `Quick test_fd_tables_isolated;
    Alcotest.test_case "heap deterministic" `Quick
      test_heap_deterministic_across_restore;
    Alcotest.test_case "allocator classes and reuse" `Quick
      test_allocator_reuse_and_classes;
    Alcotest.test_case "fanout capacity" `Quick test_fanout_capacity;
    Alcotest.test_case "fanout unlink shifts" `Quick test_fanout_unlink_shifts;
    Alcotest.test_case "rhash interior removal" `Quick
      test_rhash_stat_after_chain_ops;
    Alcotest.test_case "#14 lost flag effect" `Slow
      test_uart_flags_lost_update_effect;
    Alcotest.test_case "#11 needs the window" `Quick
      test_configfs_crash_only_with_item_window;
  ]

let () = Alcotest.run "kernel-depth" [ ("semantics", tests) ]
