(* Sequential semantic tests of the guest kernel: boot, the syscall
   surface, fd lifecycle, and each subsystem's sequential behaviour
   (which must be clean - console-silent and panic-free - because the
   fuzzer only keeps clean sequential tests as corpus entries). *)

module Abi = Kernel.Abi
module P = Fuzzer.Prog
module Exec = Sched.Exec

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let c nr args = { P.nr; args }
let k v = P.Const v

let env = lazy (Exec.make_env Kernel.Config.all_buggy)

let run prog = Exec.run_seq (Lazy.force env) ~tid:0 prog

let retvals prog = (run prog).Exec.sq_retvals

let clean name prog =
  let r = run prog in
  checkb (name ^ " no panic") false r.Exec.sq_panicked;
  Alcotest.(check (list string)) (name ^ " console silent") [] r.Exec.sq_console

let test_boot () =
  let e = Lazy.force env in
  checkb "boot completes" true (Array.length e.Exec.kern.Kernel.image.Vmm.Asm.code > 500)

let test_socket_fds () =
  let rv =
    retvals
      [
        c Abi.sys_socket [ k Abi.af_inet; k 0 ];
        c Abi.sys_socket [ k Abi.af_inet6; k 0 ];
        c Abi.sys_close [ P.Res 0 ];
        c Abi.sys_socket [ k Abi.af_packet; k 0 ];
        c Abi.sys_close [ P.Res 99 ];
      ]
  in
  checki "first fd" 0 rv.(0);
  checki "second fd" 1 rv.(1);
  checki "close ok" 0 rv.(2);
  checki "fd slot reused" 0 rv.(3);
  checki "bad resource index becomes EBADF" Abi.ebadf rv.(4)

let test_bad_fd () =
  let rv =
    retvals
      [
        c Abi.sys_sendmsg [ k 7; k 10 ];
        c Abi.sys_close [ k 7 ];
        c Abi.sys_read [ k (-3); k 10 ];
      ]
  in
  checki "sendmsg EBADF" Abi.ebadf rv.(0);
  checki "close EBADF" Abi.ebadf rv.(1);
  checki "read EBADF" Abi.ebadf rv.(2)

let test_bad_syscall_nr () =
  let rv = retvals [ c 99 [] ] in
  checki "bad nr EINVAL" Abi.einval rv.(0)

let test_msgget_semantics () =
  let rv =
    retvals
      [
        c Abi.sys_msgget [ k 3 ];
        c Abi.sys_msgget [ k 3 ];
        c Abi.sys_msgget [ k 4 ];
        c Abi.sys_msgctl [ P.Res 0; k Abi.ipc_stat ];
        c Abi.sys_msgctl [ P.Res 0; k Abi.ipc_rmid ];
        c Abi.sys_msgget [ k 3 ];
        c Abi.sys_msgctl [ k 9999; k Abi.ipc_rmid ];
      ]
  in
  checki "fresh id" 100 rv.(0);
  checki "same key same id" 100 rv.(1);
  checki "new key new id" 101 rv.(2);
  checki "stat finds key" 3 rv.(3);
  checki "rmid ok" 0 rv.(4);
  checki "recreated with fresh id" 102 rv.(5);
  checki "rmid of unknown id" Abi.enoent rv.(6)

let test_msg_chain () =
  (* keys 1 and 9 hash to the same bucket (8 buckets): chain handling *)
  let rv =
    retvals
      [
        c Abi.sys_msgget [ k 1 ];
        c Abi.sys_msgget [ k 9 ];
        c Abi.sys_msgget [ k 1 ];
        c Abi.sys_msgget [ k 9 ];
        c Abi.sys_msgctl [ P.Res 0; k Abi.ipc_rmid ];
        c Abi.sys_msgget [ k 9 ];
      ]
  in
  checkb "chained keys distinct ids" true (rv.(0) <> rv.(1));
  checki "chain lookup 1" rv.(0) rv.(2);
  checki "chain lookup 9" rv.(1) rv.(3);
  checki "remove head-or-interior ok" 0 rv.(4);
  checki "other key survives" rv.(1) rv.(5)

let test_l2tp_semantics () =
  clean "l2tp"
    [
      c Abi.sys_socket [ k Abi.px_proto_ol2tp; k 0 ];
      c Abi.sys_connect [ P.Res 0; k 5; k 0 ];
      c Abi.sys_sendmsg [ P.Res 0; k 64 ];
    ];
  let rv =
    retvals
      [
        c Abi.sys_socket [ k Abi.px_proto_ol2tp; k 0 ];
        c Abi.sys_sendmsg [ P.Res 0; k 64 ];
      ]
  in
  checki "sendmsg before connect" Abi.einval rv.(1)

let test_l2tp_tunnel_reuse () =
  clean "two connects same tunnel"
    [
      c Abi.sys_socket [ k Abi.px_proto_ol2tp; k 0 ];
      c Abi.sys_connect [ P.Res 0; k 5; k 0 ];
      c Abi.sys_socket [ k Abi.px_proto_ol2tp; k 0 ];
      c Abi.sys_connect [ P.Res 2; k 5; k 0 ];
      c Abi.sys_sendmsg [ P.Res 2; k 8 ];
    ]

let test_mac_roundtrip () =
  let e = Lazy.force env in
  let prog =
    [
      c Abi.sys_socket [ k Abi.af_inet; k 0 ];
      c Abi.sys_ioctl
        [ P.Res 0; k Abi.siocsifhwaddr; P.Buf "\x01\x02\x03\x04\x05\x06" ];
      c Abi.sys_ioctl
        [ P.Res 0; k Abi.siocgifhwaddr; P.Buf "\x00\x00\x00\x00\x00\x00" ];
    ]
  in
  let r = Exec.run_seq e ~tid:0 prog in
  checkb "no panic" false r.Exec.sq_panicked;
  (* the get wrote the MAC into the user buffer of call 2, argument 2 *)
  let base = P.buf_addr 2 + 32 in
  let got = List.init 6 (fun i -> Vmm.Vm.peek e.Exec.vm 0 (base + i) 1) in
  Alcotest.(check (list int)) "mac read back" [ 1; 2; 3; 4; 5; 6 ] got

let test_ext4_clean_reads () =
  clean "read after swap is consistent"
    [
      c Abi.sys_open [ k 2; k 0 ];
      c Abi.sys_read [ P.Res 0; k 64 ];
      c Abi.sys_ioctl [ P.Res 0; k Abi.ext4_ioc_swap_boot; k 2 ];
      c Abi.sys_read [ P.Res 0; k 64 ];
      c Abi.sys_write [ P.Res 0; k 64 ];
      c Abi.sys_read [ P.Res 0; k 64 ];
      c Abi.sys_rename [ k 2; k 3 ];
      c Abi.sys_read [ P.Res 0; k 64 ];
      c Abi.sys_mount [];
    ]

let test_ext4_truncate_then_read () =
  (* a freed block is skipped, not an IO error, sequentially *)
  clean "truncate then read"
    [
      c Abi.sys_open [ k 5; k 0 ];
      c Abi.sys_ftruncate [ P.Res 0 ];
      c Abi.sys_read [ P.Res 0; k 64 ];
      c Abi.sys_write [ P.Res 0; k 64 ];
      c Abi.sys_read [ P.Res 0; k 64 ];
    ]

let test_configfs_lifecycle () =
  let rv =
    retvals
      [
        c Abi.sys_open [ k Abi.path_configfs; k 0 ] (* lookup boot item *);
        c Abi.sys_open [ k Abi.path_configfs; k Abi.o_remove ];
        c Abi.sys_open [ k Abi.path_configfs; k 0 ] (* now ENOENT *);
        c Abi.sys_open [ k Abi.path_configfs; k Abi.o_create ];
        c Abi.sys_open [ k Abi.path_configfs; k 0 ];
      ]
  in
  checkb "boot item found" true (rv.(0) >= 0);
  checki "remove ok" 0 rv.(1);
  checki "lookup after remove" Abi.enoent rv.(2);
  checkb "recreate ok" true (rv.(3) >= 0);
  checkb "lookup after create" true (rv.(4) >= 0)

let test_tty_and_sound_and_cc () =
  clean "tty open + autoconfig"
    [
      c Abi.sys_open [ k Abi.path_tty; k 0 ];
      c Abi.sys_read [ P.Res 0; k 8 ];
      c Abi.sys_ioctl [ P.Res 0; k Abi.tiocserconfig; k 0 ];
    ];
  clean "sound elem add"
    [
      c Abi.sys_open [ k 0; k 0 ];
      c Abi.sys_ioctl [ P.Res 0; k Abi.sndrv_ctl_elem_add; k 1 ];
      c Abi.sys_ioctl [ P.Res 0; k Abi.sndrv_ctl_elem_add; k 2 ];
    ];
  clean "congestion control"
    [
      c Abi.sys_socket [ k Abi.af_inet; k 0 ];
      c Abi.sys_ioctl [ P.Res 0; k Abi.tcp_set_default_cc; k 2 ];
      c Abi.sys_setsockopt [ P.Res 0; k Abi.so_tcp_congestion; k 0 ];
      c Abi.sys_setsockopt [ P.Res 0; k Abi.so_tcp_congestion; k 3 ];
    ]

let test_fanout_lifecycle () =
  let rv =
    retvals
      [
        c Abi.sys_socket [ k Abi.af_packet; k 0 ];
        c Abi.sys_setsockopt [ P.Res 0; k Abi.so_packet_fanout; k 0 ];
        c Abi.sys_sendmsg [ P.Res 0; k 13 ];
        c Abi.sys_close [ P.Res 0 ];
        c Abi.sys_socket [ k Abi.af_packet; k 0 ];
        c Abi.sys_sendmsg [ P.Res 4; k 13 ] (* group empty again *);
      ]
  in
  checki "fanout add ok" 0 rv.(1);
  checkb "demux returns member" true (rv.(2) <> 0);
  checki "close unlinks" 0 rv.(3);
  checki "demux on empty group" 0 rv.(5)

let test_fanout_nonmember_setsockopt () =
  let rv =
    retvals
      [
        c Abi.sys_socket [ k Abi.af_inet; k 0 ];
        c Abi.sys_setsockopt [ P.Res 0; k Abi.so_packet_fanout; k 0 ];
      ]
  in
  checki "fanout on non-packet socket" Abi.ebadf rv.(1)

let test_mtu_and_blockdev () =
  let rv =
    retvals
      [
        c Abi.sys_socket [ k Abi.af_inet6; k 0 ];
        c Abi.sys_sendmsg [ P.Res 0; k 512 ];
        c Abi.sys_socket [ k Abi.af_inet; k 0 ];
        c Abi.sys_ioctl [ P.Res 2; k Abi.siocsifmtu; k 100 ];
        c Abi.sys_sendmsg [ P.Res 0; k 512 ] (* now over the 100-byte mtu *);
      ]
  in
  checki "fits default mtu" 0 rv.(1);
  checki "mtu set" 0 rv.(3);
  checki "over mtu EINVAL" Abi.einval rv.(4);
  clean "blockdev"
    [
      c Abi.sys_open [ k Abi.path_blockdev; k 0 ];
      c Abi.sys_ioctl [ P.Res 0; k Abi.blkraset; k 256 ];
      c Abi.sys_fadvise [ P.Res 0; k 1 ];
      c Abi.sys_ioctl [ P.Res 0; k Abi.blkbszset; k 4096 ];
      c Abi.sys_read [ P.Res 0; k 64 ];
    ]

let test_all_sequential_scenarios_clean () =
  (* every Table 2 scenario must be console-clean when run sequentially:
     the issues are concurrency bugs, not sequential ones *)
  List.iter
    (fun (s : Harness.Scenarios.scenario) ->
      let rw = run s.Harness.Scenarios.writer in
      let rr = run s.Harness.Scenarios.reader in
      checkb
        (Printf.sprintf "#%d writer clean" s.Harness.Scenarios.issue)
        false rw.Exec.sq_panicked;
      checkb
        (Printf.sprintf "#%d reader clean" s.Harness.Scenarios.issue)
        false rr.Exec.sq_panicked;
      Alcotest.(check (list string))
        (Printf.sprintf "#%d writer console" s.Harness.Scenarios.issue)
        [] rw.Exec.sq_console)
    Harness.Scenarios.all

let test_version_configs () =
  (* both version presets boot and execute a smoke program *)
  List.iter
    (fun cfg ->
      let e = Exec.make_env cfg in
      let r =
        Exec.run_seq e ~tid:0
          [ c Abi.sys_socket [ k Abi.af_inet; k 0 ]; c Abi.sys_msgget [ k 1 ] ]
      in
      checkb "version boots and runs" false r.Exec.sq_panicked)
    [ Kernel.Config.v5_3_10; Kernel.Config.v5_12_rc3; Kernel.Config.all_fixed ]

let test_pipe_semantics () =
  let rv =
    retvals
      [
        c 17 [] (* pipe *);
        c Abi.sys_write [ P.Res 0; k 5 ] (* write 5 bytes of value 5 *);
        c Abi.sys_read [ P.Res 0; k 3 ] (* consume 3, last byte is 5 *);
        c Abi.sys_read [ P.Res 0; k 10 ] (* consume the remaining 2 *);
        c Abi.sys_read [ P.Res 0; k 1 ] (* empty: -1 *);
        c Abi.sys_write [ P.Res 0; k 100 ] (* capacity-limited *);
        c Abi.sys_close [ P.Res 0 ];
      ]
  in
  checkb "pipe fd" true (rv.(0) >= 0);
  checki "write count" 5 rv.(1);
  checki "read returns byte" 5 rv.(2);
  checki "drain returns byte" 5 rv.(3);
  checki "empty read" (-1) rv.(4);
  checki "bounded by capacity" 16 rv.(5);
  checki "close ok" 0 rv.(6)

let test_pipe_no_false_races () =
  (* two threads hammering the same pipe pattern: the correctly locked
     ring buffer must produce no race reports under dense preemption *)
  let e = Lazy.force env in
  let prog =
    [
      c 17 [];
      c Abi.sys_write [ P.Res 0; k 7 ];
      c Abi.sys_read [ P.Res 0; k 4 ];
      c Abi.sys_write [ P.Res 0; k 9 ];
      c Abi.sys_read [ P.Res 0; k 16 ];
    ]
  in
  for seed = 1 to 10 do
    let race = Detectors.Race.create () in
    let observer =
      {
        Sched.Exec.default_observer with
        Sched.Exec.on_access =
          (fun a ~ctx -> Detectors.Race.on_access race a ~ctx);
      }
    in
    let rng = Random.State.make [| seed |] in
    let res =
      Sched.Exec.run_conc e ~writer:prog ~reader:prog
        ~policy:(Sched.Policies.naive rng ~period:2)
        ~observer ()
    in
    checkb "completes" false res.Sched.Exec.cc_deadlocked;
    (* only the known-benign slab-stats race may appear *)
    List.iter
      (fun r ->
        checkb "no pipe race" true
          (Detectors.Oracle.issue_of_race r = Some 13))
      (Detectors.Race.reports race)
  done

let test_determinism () =
  let prog =
    [
      c Abi.sys_socket [ k Abi.af_inet; k 0 ];
      c Abi.sys_msgget [ k 2 ];
      c Abi.sys_open [ k 1; k 0 ];
      c Abi.sys_read [ P.Res 2; k 64 ];
    ]
  in
  let r1 = run prog and r2 = run prog in
  checkb "identical access traces from snapshot" true
    (r1.Exec.sq_accesses = r2.Exec.sq_accesses);
  checkb "identical retvals" true (r1.Exec.sq_retvals = r2.Exec.sq_retvals)

let tests =
  [
    Alcotest.test_case "boot" `Quick test_boot;
    Alcotest.test_case "socket fd lifecycle" `Quick test_socket_fds;
    Alcotest.test_case "bad fds" `Quick test_bad_fd;
    Alcotest.test_case "bad syscall nr" `Quick test_bad_syscall_nr;
    Alcotest.test_case "msgget/msgctl" `Quick test_msgget_semantics;
    Alcotest.test_case "msg bucket chains" `Quick test_msg_chain;
    Alcotest.test_case "l2tp" `Quick test_l2tp_semantics;
    Alcotest.test_case "l2tp tunnel reuse" `Quick test_l2tp_tunnel_reuse;
    Alcotest.test_case "mac roundtrip" `Quick test_mac_roundtrip;
    Alcotest.test_case "ext4 reads clean" `Quick test_ext4_clean_reads;
    Alcotest.test_case "ext4 truncate/read" `Quick test_ext4_truncate_then_read;
    Alcotest.test_case "configfs lifecycle" `Quick test_configfs_lifecycle;
    Alcotest.test_case "tty/sound/cc" `Quick test_tty_and_sound_and_cc;
    Alcotest.test_case "fanout lifecycle" `Quick test_fanout_lifecycle;
    Alcotest.test_case "fanout wrong socket" `Quick test_fanout_nonmember_setsockopt;
    Alcotest.test_case "mtu and blockdev" `Quick test_mtu_and_blockdev;
    Alcotest.test_case "pipe semantics" `Quick test_pipe_semantics;
    Alcotest.test_case "pipe has no false races" `Quick test_pipe_no_false_races;
    Alcotest.test_case "scenarios sequentially clean" `Quick
      test_all_sequential_scenarios_clean;
    Alcotest.test_case "version configs" `Quick test_version_configs;
    Alcotest.test_case "determinism" `Quick test_determinism;
  ]

let () = Alcotest.run "kernel" [ ("syscalls", tests) ]
