(* Telemetry-layer tests: domain-sharded metrics under real Domain.spawn
   concurrency, span nesting with worker domains in flight, the flight
   recorder's ring wrapping while snapshots stream, NDJSON determinism,
   the nondeterministic-unit scrub, OpenMetrics rendering/validation and
   the coverage frontier. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let contains = Testutil.Astring_contains.contains

let reset () =
  Obs.Telemetry.configure ~enabled:false ();
  Obs.Telemetry.set_clock None;
  Obs.Telemetry.set_source None;
  Obs.Event.configure ~enabled:false ();
  Obs.Metrics.set_enabled true;
  Obs.Metrics.reset ();
  Obs.Span.reset ()

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

(* ---------------- sharded metrics under domains ---------------- *)

(* Regression for the worker-domain mutation hazard: counter/histogram
   updates go through per-domain shards, so concurrent increments from
   spawned domains are never lost and totals are exact after the join. *)
let test_sharded_exact_after_join () =
  reset ();
  let c = Obs.Metrics.counter "tel/shard_c" in
  let h = Obs.Metrics.histogram "tel/shard_h" in
  let workers = 4 and n = 25_000 in
  let ds =
    List.init workers (fun _ ->
        Domain.spawn (fun () ->
            for i = 1 to n do
              Obs.Metrics.incr c;
              Obs.Metrics.observe h (i land 1023)
            done))
  in
  List.iter Domain.join ds;
  Obs.Metrics.incr c;
  checki "counter exact after join" ((workers * n) + 1)
    (Obs.Metrics.counter_value c);
  checki "histogram count exact after join" (workers * n)
    (Obs.Metrics.hist_count h);
  checkb "histogram sum positive" true (Obs.Metrics.hist_sum h > 0)

let test_sharded_monotone_during_run () =
  reset ();
  let c = Obs.Metrics.counter "tel/mono" in
  let stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Obs.Metrics.incr c
        done)
  in
  (* merge-on-read totals may be stale mid-run but never go backwards *)
  let prev = ref 0 in
  let ok = ref true in
  for _ = 1 to 1000 do
    let v = Obs.Metrics.counter_value c in
    if v < !prev then ok := false;
    prev := v
  done;
  Atomic.set stop true;
  Domain.join d;
  checkb "merged total is monotone" true !ok

(* ---------------- span nesting with concurrent domains ----------- *)

let test_span_nesting_with_worker_domains () =
  reset ();
  Obs.Span.start "outer";
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            (* worker-domain spans are silent no-ops: they must neither
               crash nor perturb the main domain's open stack *)
            for _ = 1 to 200 do
              Obs.Span.start "worker";
              Obs.Span.stop ();
              Obs.Span.with_span "worker2" (fun () -> ())
            done))
  in
  Obs.Span.with_span "inner" (fun () -> ());
  List.iter Domain.join ds;
  Obs.Span.stop ();
  match Obs.Span.roots () with
  | [ r ] ->
      Alcotest.(check string) "root name" "outer" r.Obs.Span.name;
      Alcotest.(check (list string))
        "main-domain children only" [ "inner" ]
        (List.map (fun (s : Obs.Span.span) -> s.Obs.Span.name) r.Obs.Span.children)
  | roots ->
      Alcotest.failf "expected exactly one root span, got %d" (List.length roots)

(* ---------------- event ring wraparound under streaming ----------- *)

let test_ring_wraparound_mid_stream () =
  reset ();
  Obs.Event.configure ~capacity:32 ~deterministic:true ~enabled:true ();
  let path = Filename.temp_file "tel_ring" ".ndjson" in
  Obs.Telemetry.configure ~out:path ~deterministic:true ~enabled:true ();
  for i = 1 to 100 do
    Obs.Event.emit ~tid:0
      (Obs.Event.Note { name = "n"; detail = string_of_int i });
    (* snapshots taken while the ring is actively wrapping *)
    if i mod 25 = 0 then Obs.Telemetry.snapshot ~reason:"forced" ()
  done;
  let s = Obs.Event.stats () in
  checki "totality: seen = dropped + buffered" s.Obs.Event.st_seen
    (s.Obs.Event.st_dropped + s.Obs.Event.st_buffered);
  checki "all emissions counted" 100 s.Obs.Event.st_seen;
  checki "ring kept its capacity" 32 s.Obs.Event.st_buffered;
  Obs.Telemetry.close ();
  let lines = read_lines path in
  Sys.remove path;
  checkb "at least forced + final snapshots" true (List.length lines >= 5);
  checkb "every line parses as JSON" true
    (List.for_all (fun l -> Obs.Export.of_string_opt l <> None) lines);
  let last = List.nth lines (List.length lines - 1) in
  checkb "final snapshot carries the full seen tally" true
    (contains last "\"seen\":100")

(* ---------------- NDJSON determinism ---------------- *)

let test_stream_deterministic () =
  let run path =
    reset ();
    let c = Obs.Metrics.counter "tel/det_c" in
    let vc = ref 0 in
    Obs.Telemetry.configure ~out:path ~deterministic:true ~interval:100
      ~enabled:true ();
    Obs.Telemetry.set_clock (Some (fun () -> !vc));
    Obs.Telemetry.phase "work";
    for i = 1 to 1000 do
      Obs.Metrics.incr c;
      vc := i * 3;
      Obs.Telemetry.tick ()
    done;
    Obs.Telemetry.close ();
    Obs.Telemetry.set_clock None
  in
  let p1 = Filename.temp_file "tel_det" ".ndjson" in
  let p2 = Filename.temp_file "tel_det" ".ndjson" in
  run p1;
  run p2;
  let l1 = read_lines p1 and l2 = read_lines p2 in
  Sys.remove p1;
  Sys.remove p2;
  checkb "interval snapshots fired" true (List.length l1 > 5);
  Alcotest.(check (list string)) "byte-identical streams" l1 l2;
  checkb "no wall stamps in deterministic stream" true
    (List.for_all (fun l -> not (contains l "wall_ms")) l1)

let test_tick_noop_on_worker_domain () =
  reset ();
  let path = Filename.temp_file "tel_worker" ".ndjson" in
  Obs.Telemetry.configure ~out:path ~deterministic:true ~interval:1
    ~enabled:true ();
  let vc = ref 0 in
  Obs.Telemetry.set_clock (Some (fun () -> !vc));
  let d =
    Domain.spawn (fun () ->
        for i = 1 to 100 do
          vc := i * 1000;
          Obs.Telemetry.tick ();
          Obs.Telemetry.phase "worker-phase";
          Obs.Telemetry.snapshot ()
        done)
  in
  Domain.join d;
  checki "worker ticks/phases/snapshots are no-ops" 0
    (Obs.Telemetry.snapshots ());
  Obs.Telemetry.close ();
  Obs.Telemetry.set_clock None;
  let lines = read_lines path in
  Sys.remove path;
  checki "only the main domain's final snapshot" 1 (List.length lines)

(* ---------------- mid-stream kill ---------------- *)

(* Every snapshot is one whole fsynced line, so a kill mid-write tears
   at most the final line: a post-mortem reader sees only complete,
   parseable NDJSON lines plus (possibly) one unterminated fragment. *)
let test_mid_stream_kill_leaves_whole_lines () =
  reset ();
  let path = Filename.temp_file "tel_kill" ".ndjson" in
  Obs.Telemetry.configure ~out:path ~deterministic:true ~enabled:true ();
  Obs.Telemetry.snapshot ~reason:"one" ();
  Obs.Telemetry.snapshot ~reason:"two" ();
  Obs.Storage.arm_crash ~mode:Obs.Storage.Raise ~site:"telemetry.line" ~k:1 ();
  (match Obs.Telemetry.snapshot ~reason:"torn" () with
  | () -> Alcotest.fail "armed crashpoint must fire"
  | exception Obs.Storage.Crash_simulated _ -> ());
  Obs.Storage.disarm_crash ();
  (* read the wreckage as a post-mortem consumer would, without closing
     the stream: the writing process is "dead" *)
  let ic = open_in_bin path in
  let bytes = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Obs.Telemetry.configure ~enabled:false ();
  Sys.remove path;
  let whole, tail =
    match List.rev (String.split_on_char '\n' bytes) with
    | tail :: rev_whole -> (List.rev rev_whole, tail)
    | [] -> ([], "")
  in
  checki "both fsynced lines survive whole" 2 (List.length whole);
  checkb "every terminated line parses as JSON" true
    (List.for_all (fun l -> Obs.Export.of_string_opt l <> None) whole);
  checkb "the torn fragment is not a parseable line" true
    (tail = "" || Obs.Export.of_string_opt tail = None)

(* ---------------- nondeterministic-unit scrub ---------------- *)

let test_nondeterministic_unit_predicate () =
  List.iter
    (fun u ->
      checkb (u ^ " is nondeterministic") true
        (Obs.Export.is_nondeterministic_unit u))
    [
      "us"; "ms"; "ns"; "s"; "steps/s"; "pages/s"; "trials/s"; "instr/s";
      (* the "~" opt-in marker: scheduling-timing-dependent counts
         (pool steals, VM reuse, restore page tallies) *)
      "~vm"; "~steal"; "~item"; "~scan"; "~page";
    ];
  List.iter
    (fun u ->
      checkb (u ^ " is deterministic") false
        (Obs.Export.is_nondeterministic_unit u))
    [ ""; "pages"; "bytes"; "tests"; "s/x"; "instructions"; "a~b" ]

let test_deterministic_artifact_scrubs_rates () =
  reset ();
  let c = Obs.Metrics.counter ~unit_:"steps/s" "tel/banned_rate" in
  let g = Obs.Metrics.gauge ~unit_:"trials/s" "tel/banned_gauge" in
  let t = Obs.Metrics.counter ~unit_:"us" "tel/banned_time" in
  let s = Obs.Metrics.counter ~unit_:"~steal" "tel/banned_sched" in
  let ok = Obs.Metrics.counter ~unit_:"pages" "tel/kept" in
  Obs.Metrics.add c 5;
  Obs.Metrics.set g 7;
  Obs.Metrics.add t 9;
  Obs.Metrics.add s 10;
  Obs.Metrics.add ok 11;
  let det = Obs.Export.to_line (Obs.Export.registry_json ~deterministic:true ()) in
  checkb "rate counter scrubbed" false (contains det "tel/banned_rate");
  checkb "rate gauge scrubbed" false (contains det "tel/banned_gauge");
  checkb "time counter scrubbed" false (contains det "tel/banned_time");
  checkb "timing-dependent (~) counter scrubbed" false
    (contains det "tel/banned_sched");
  checkb "plain-unit metric kept" true (contains det "tel/kept");
  let full = Obs.Export.to_line (Obs.Export.registry_json ~deterministic:false ()) in
  checkb "non-deterministic artifact keeps rates" true
    (contains full "tel/banned_rate");
  checkb "non-deterministic artifact keeps ~ counters" true
    (contains full "tel/banned_sched")

(* ---------------- OpenMetrics ---------------- *)

let test_openmetrics_valid () =
  reset ();
  let c = Obs.Metrics.counter ~unit_:"tests" "tel/om.c" in
  let g = Obs.Metrics.gauge "tel/om_g" in
  let h = Obs.Metrics.histogram "tel/om_h" in
  Obs.Metrics.add c 3;
  Obs.Metrics.set g 9;
  List.iter (Obs.Metrics.observe h) [ 1; 5; 1000 ];
  let om = Obs.Export.openmetrics ~deterministic:true () in
  checkb "counter family" true (contains om "tel_om_c_total 3");
  checkb "histogram +Inf bucket" true (contains om "le=\"+Inf\"");
  checkb "terminated" true (contains om "# EOF");
  checkb "validates" true (Obs.Export.openmetrics_valid om);
  checkb "junk after EOF rejected" false
    (Obs.Export.openmetrics_valid (om ^ "junk 1\n"));
  checkb "missing EOF rejected" false
    (Obs.Export.openmetrics_valid "a_total 1\n");
  checkb "sample before TYPE rejected" false
    (Obs.Export.openmetrics_valid "x_total 1\n# TYPE x counter\n# EOF\n")

let test_to_line_roundtrip () =
  let open Obs.Export in
  let j =
    Obj
      [
        ("a", Int 1);
        ("b", List [ String "x\"y"; Bool false; Float 2.5 ]);
        ("c", Obj [ ("nested", Int (-3)) ]);
      ]
  in
  let line = to_line j in
  checkb "single line" false (String.contains line '\n');
  checkb "round-trips" true (of_string_opt line = Some j)

(* ---------------- coverage frontier ---------------- *)

let small_cfg =
  {
    Harness.Pipeline.default with
    Harness.Pipeline.fuzz_iters = 120;
    trials_per_test = 4;
  }

let t = lazy (Harness.Pipeline.prepare small_cfg)

let first_pmc ident =
  Core.Identify.fold
    (fun pmc _ acc -> match acc with None -> Some pmc | some -> some)
    ident None

let test_frontier_tracks_coverage () =
  reset ();
  let t = Lazy.force t in
  let f = Harness.Frontier.create t.Harness.Pipeline.ident in
  checki "starts with no tests" 0 (Harness.Frontier.tests f);
  let before = Harness.Frontier.frontier f in
  checkb "every Table 1 strategy present"
    true
    (List.map fst before = Core.Cluster.all);
  (* a hint-less test advances tallies but not coverage *)
  Harness.Frontier.note f ~issues:[] ~trials:7 ();
  checki "tests" 1 (Harness.Frontier.tests f);
  checki "trials" 7 (Harness.Frontier.trials f);
  checkb "frontier unchanged without a hint" true
    (Harness.Frontier.frontier f = before);
  (* a hinted test shrinks S-FULL's frontier by exactly one cluster *)
  (match first_pmc t.Harness.Pipeline.ident with
  | None -> Alcotest.fail "prepared pipeline identified no PMCs"
  | Some pmc ->
      Harness.Frontier.note f ~hint:pmc ~issues:[ 13 ] ~trials:3 ();
      let after = Harness.Frontier.frontier f in
      let get s l = List.assoc s l in
      checki "S-FULL frontier shrank by one"
        (get Core.Cluster.S_FULL before - 1)
        (get Core.Cluster.S_FULL after);
      (* noting the same PMC again must not double-count *)
      Harness.Frontier.note f ~hint:pmc ~issues:[ 13 ] ~trials:3 ();
      checkb "idempotent coverage" true
        (Harness.Frontier.frontier f = after));
  Alcotest.(check (list (pair int int)))
    "tests-to-find records the discovery ordinal" [ (13, 2) ]
    (Harness.Frontier.tests_to_find f);
  checkb "hud lines render one bar per strategy" true
    (List.length (Harness.Frontier.hud_lines f)
    >= List.length Core.Cluster.all);
  match Harness.Frontier.json f with
  | Obs.Export.Obj fields ->
      checkb "json carries tallies and strategies" true
        (List.mem_assoc "tests" fields
        && List.mem_assoc "strategies" fields
        && List.mem_assoc "issues" fields)
  | _ -> Alcotest.fail "frontier json is not an object"

let test_frontier_in_snapshot_stream () =
  reset ();
  let t = Lazy.force t in
  let f = Harness.Frontier.create t.Harness.Pipeline.ident in
  let path = Filename.temp_file "tel_frontier" ".ndjson" in
  Obs.Telemetry.configure ~out:path ~deterministic:true ~enabled:true ();
  Obs.Telemetry.set_source
    (Some (fun () -> [ ("frontier", Harness.Frontier.json f) ]));
  Harness.Frontier.note f ~issues:[] ~trials:2 ();
  Obs.Telemetry.snapshot ();
  Obs.Telemetry.close ();
  Obs.Telemetry.set_source None;
  let lines = read_lines path in
  Sys.remove path;
  checkb "snapshot lines present" true (List.length lines >= 2);
  checkb "frontier field embedded in every snapshot" true
    (List.for_all (fun l -> contains l "\"frontier\":") lines)

let () =
  Alcotest.run "telemetry"
    [
      ( "shards",
        [
          Alcotest.test_case "exact totals after join" `Quick
            test_sharded_exact_after_join;
          Alcotest.test_case "monotone during run" `Quick
            test_sharded_monotone_during_run;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting with worker domains" `Quick
            test_span_nesting_with_worker_domains;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraparound mid-stream" `Quick
            test_ring_wraparound_mid_stream;
        ] );
      ( "stream",
        [
          Alcotest.test_case "deterministic byte-identical" `Quick
            test_stream_deterministic;
          Alcotest.test_case "worker-domain ticks are no-ops" `Quick
            test_tick_noop_on_worker_domain;
          Alcotest.test_case "mid-stream kill leaves whole lines" `Quick
            test_mid_stream_kill_leaves_whole_lines;
        ] );
      ( "scrub",
        [
          Alcotest.test_case "unit predicate" `Quick
            test_nondeterministic_unit_predicate;
          Alcotest.test_case "deterministic artifact scrubs rates" `Quick
            test_deterministic_artifact_scrubs_rates;
        ] );
      ( "openmetrics",
        [
          Alcotest.test_case "render and validate" `Quick test_openmetrics_valid;
          Alcotest.test_case "to_line round-trip" `Quick test_to_line_roundtrip;
        ] );
      ( "frontier",
        [
          Alcotest.test_case "tracks coverage" `Quick
            test_frontier_tracks_coverage;
          Alcotest.test_case "embeds in snapshots" `Quick
            test_frontier_in_snapshot_stream;
        ] );
    ]
